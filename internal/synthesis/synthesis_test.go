package synthesis

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"cicero/internal/netprop"
	"cicero/internal/openflow"
	"cicero/internal/topology"
)

// rule is a test shorthand.
func rule(prio int, src, dst, next string, cookie uint64) openflow.Rule {
	return openflow.Rule{Priority: prio, Match: openflow.Match{Src: src, Dst: dst},
		Action: openflow.Action{Type: openflow.ActionOutput, NextHop: next}, Cookie: cookie}
}

// lineGraph builds s0-s1-...-s{n-1} with host h0 on s0 and h1 on s{n-1},
// plus any extra switch-switch links.
func lineGraph(n int, extra ...[2]string) *topology.Graph {
	g := topology.NewGraph()
	for i := 0; i < n; i++ {
		g.AddNode(topology.Node{ID: fmt.Sprintf("s%d", i), Kind: topology.KindEdge})
	}
	for i := 0; i+1 < n; i++ {
		_ = g.AddLink(fmt.Sprintf("s%d", i), fmt.Sprintf("s%d", i+1), 100*time.Microsecond, 10)
	}
	g.AddNode(topology.Node{ID: "h0", Kind: topology.KindHost})
	g.AddNode(topology.Node{ID: "h1", Kind: topology.KindHost})
	_ = g.AddLink("h0", "s0", 100*time.Microsecond, 10)
	_ = g.AddLink("h1", fmt.Sprintf("s%d", n-1), 100*time.Microsecond, 10)
	for _, e := range extra {
		_ = g.AddLink(e[0], e[1], 100*time.Microsecond, 10)
	}
	return g
}

// rerouteScenario moves flow *->h1 from s0-s1-s2 onto s0-s3-s2: one add
// (s3), one replace (s0), one delete (s1), egress unchanged. A
// single-phase order exists (install s3, swap s0, remove s1).
func rerouteScenario() *Scenario {
	g := lineGraph(3, [2]string{"s0", "s3"}, [2]string{"s3", "s2"})
	g.AddNode(topology.Node{ID: "s3", Kind: topology.KindEdge})
	return &Scenario{
		Name:  "reroute",
		Graph: g,
		Hosts: map[string]bool{"h0": true, "h1": true},
		Old: map[string][]openflow.Rule{
			"s0": {rule(10, "*", "h1", "s1", 1)},
			"s1": {rule(10, "*", "h1", "s2", 2)},
			"s2": {rule(10, "*", "h1", "h1", 3)},
		},
		New: map[string][]openflow.Rule{
			"s0": {rule(10, "*", "h1", "s3", 4)},
			"s3": {rule(10, "*", "h1", "s2", 5)},
			"s2": {rule(10, "*", "h1", "h1", 3)},
		},
	}
}

// swapGadget is the known-impossible single-phase transition: relays a
// and b swap places across waypoint w (old i-a-w-b-e, new i-b-w-a-e, the
// egress rule unchanged, policy "via w from i"). Every possible first
// move violates a property — updating i or a bypasses w, updating w or b
// loops — so synthesis must take the two-phase fallback.
func swapGadget() *Scenario {
	g := topology.NewGraph()
	for _, id := range []string{"i", "a", "w", "b", "e"} {
		g.AddNode(topology.Node{ID: id, Kind: topology.KindEdge})
	}
	for _, l := range [][2]string{{"i", "a"}, {"a", "w"}, {"w", "b"}, {"b", "e"}, {"i", "b"}, {"a", "e"}} {
		_ = g.AddLink(l[0], l[1], 100*time.Microsecond, 10)
	}
	g.AddNode(topology.Node{ID: "h", Kind: topology.KindHost})
	_ = g.AddLink("h", "e", 100*time.Microsecond, 10)
	return &Scenario{
		Name:  "swap-gadget",
		Graph: g,
		Hosts: map[string]bool{"h": true},
		Old: map[string][]openflow.Rule{
			"i": {rule(10, "*", "h", "a", 1)},
			"a": {rule(10, "*", "h", "w", 2)},
			"w": {rule(10, "*", "h", "b", 3)},
			"b": {rule(10, "*", "h", "e", 4)},
			"e": {rule(10, "*", "h", "h", 5)},
		},
		New: map[string][]openflow.Rule{
			"i": {rule(10, "*", "h", "b", 6)},
			"b": {rule(10, "*", "h", "w", 7)},
			"w": {rule(10, "*", "h", "a", 8)},
			"a": {rule(10, "*", "h", "e", 9)},
			"e": {rule(10, "*", "h", "h", 5)},
		},
		Props: netprop.Properties{Waypoints: []netprop.WaypointPolicy{
			{Src: "*", Dst: "h", Ingress: "i", Waypoints: []string{"w"}},
		}},
	}
}

// freshInstall programs a previously empty path; teardownAll removes it.
func freshInstall() *Scenario {
	s := &Scenario{
		Name:  "fresh-install",
		Graph: lineGraph(3),
		Hosts: map[string]bool{"h0": true, "h1": true},
		Old:   map[string][]openflow.Rule{},
		New: map[string][]openflow.Rule{
			"s0": {rule(10, "*", "h1", "s1", 1)},
			"s1": {rule(10, "*", "h1", "s2", 2)},
			"s2": {rule(10, "*", "h1", "h1", 3)},
		},
	}
	return s
}

func teardownAll() *Scenario {
	s := freshInstall()
	s.Name = "teardown-all"
	s.Old, s.New = s.New, s.Old
	return s
}

func TestSynthesizeTableDriven(t *testing.T) {
	cases := []struct {
		name     string
		scn      func() *Scenario
		updates  int
		twoPhase bool
	}{
		{"fresh-install", freshInstall, 3, false},
		{"teardown-all", teardownAll, 3, false},
		{"reroute", rerouteScenario, 3, false},
		{"swap-gadget", swapGadget, 8, true}, // 4 replaces split into 4 deletes + 4 adds
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scn := tc.scn()
			plan, err := Synthesize(scn)
			if err != nil {
				t.Fatalf("Synthesize: %v", err)
			}
			if len(plan.Updates) != tc.updates {
				t.Fatalf("got %d updates, want %d (%s)", len(plan.Updates), tc.updates, plan.Summary())
			}
			if len(plan.Classes) != 1 {
				t.Fatalf("got %d classes, want 1", len(plan.Classes))
			}
			cp := plan.Classes[0]
			if cp.TwoPhase != tc.twoPhase {
				t.Fatalf("TwoPhase=%v, want %v (fallback reason %q)", cp.TwoPhase, tc.twoPhase, cp.FallbackReason)
			}
			if tc.twoPhase {
				if cp.Barrier <= 0 || cp.Barrier >= len(cp.Indices) {
					t.Fatalf("two-phase class has degenerate barrier %d", cp.Barrier)
				}
				if cp.FallbackReason == "" {
					t.Fatal("two-phase class carries no counterexample")
				}
				for k, i := range cp.Indices {
					isDelete := plan.Updates[i].Mod.Op == openflow.FlowDelete
					if (k < cp.Barrier) != isDelete {
						t.Fatalf("index %d (pos %d, barrier %d): teardown/install phases interleave", i, k, cp.Barrier)
					}
				}
			}
			if err := VerifyPlan(scn, plan); err != nil {
				t.Fatalf("VerifyPlan: %v", err)
			}
		})
	}
}

func TestRerouteCommitsReversePathOrder(t *testing.T) {
	plan, err := Synthesize(rerouteScenario())
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, u := range plan.Updates {
		order = append(order, fmt.Sprintf("%s:%s", map[openflow.FlowModOp]string{
			openflow.FlowAdd: "add", openflow.FlowDelete: "del"}[u.Mod.Op], u.Mod.Switch))
	}
	got := strings.Join(order, " ")
	if got != "add:s3 add:s0 del:s1" {
		t.Fatalf("committed order %q, want the reverse-path order \"add:s3 add:s0 del:s1\"", got)
	}
}

func TestRejectionsCarryCounterexamples(t *testing.T) {
	t.Run("dirty-old-config", func(t *testing.T) {
		scn := rerouteScenario()
		scn.Old["s1"] = nil // s0 now forwards into a ruleless switch
		_, err := Synthesize(scn)
		rej, ok := err.(*Rejection)
		if !ok {
			t.Fatalf("want *Rejection, got %v", err)
		}
		if rej.Stage != "validate" || len(rej.Violations) == 0 {
			t.Fatalf("want validate rejection with violations, got %v", rej)
		}
	})
	t.Run("ambiguous-delete", func(t *testing.T) {
		g := lineGraph(1)
		scn := &Scenario{
			Name: "ambiguous", Graph: g,
			Hosts: map[string]bool{"h0": true, "h1": true},
			Old: map[string][]openflow.Rule{
				"s0": {rule(20, "h0", "h1", "h1", 5), rule(10, "*", "h1", "h1", 5)},
			},
			New: map[string][]openflow.Rule{
				"s0": {rule(20, "h0", "h1", "h1", 5)},
			},
		}
		_, err := Synthesize(scn)
		rej, ok := err.(*Rejection)
		if !ok {
			t.Fatalf("want *Rejection, got %v", err)
		}
		if rej.Stage != "diff" || rej.Counterexample() == "" {
			t.Fatalf("want diff rejection with evidence, got %v", rej)
		}
	})
	t.Run("zero-cookie", func(t *testing.T) {
		scn := rerouteScenario()
		scn.Old["s0"] = []openflow.Rule{rule(10, "*", "h1", "s1", 0)}
		_, err := Synthesize(scn)
		rej, ok := err.(*Rejection)
		if !ok || rej.Counterexample() == "" {
			t.Fatalf("want *Rejection with counterexample, got %v", err)
		}
	})
}

func TestPlantBadOrderingCaught(t *testing.T) {
	for _, mk := range []func() *Scenario{rerouteScenario, swapGadget} {
		scn := mk()
		plan, err := Synthesize(scn)
		if err != nil {
			t.Fatal(err)
		}
		mutant, edge, ok := PlantBadOrdering(scn, plan, 1)
		if !ok {
			t.Fatalf("%s: no load-bearing dependency edge found", scn.Name)
		}
		err = VerifyPlan(scn, mutant)
		if err == nil {
			t.Fatalf("%s: dropped edge %s but local verification still passes", scn.Name, edge)
		}
		if ve, isVE := err.(*VerifyError); isVE && len(ve.Violations) == 0 && ve.Detail == "" {
			t.Fatalf("%s: verify error carries no explanation", scn.Name)
		}
	}
}

func TestGenerateDeterministicAndVerified(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		scnA, planA, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		scnB, planB, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d (second run): %v", seed, err)
		}
		if scnA.Name != scnB.Name || fmt.Sprint(planA.Updates) != fmt.Sprint(planB.Updates) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
		if err := VerifyPlan(scnA, planA); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, _, ok := PlantBadOrdering(scnA, planA, seed); !ok {
			t.Fatalf("seed %d: canary not plantable", seed)
		}
	}
}

func TestGenerateCoversTwoPhase(t *testing.T) {
	two := 0
	for seed := int64(1); seed <= 40 && two == 0; seed++ {
		_, plan, err := Generate(seed)
		if err != nil {
			continue
		}
		for _, c := range plan.Classes {
			if c.TwoPhase {
				two++
			}
		}
	}
	if two == 0 {
		t.Fatal("no two-phase class in 40 generated seeds; the swap-gadget mixin is not firing")
	}
}

// FuzzSynthesize asserts the synthesis contract on seeded random
// scenarios (sometimes corrupted to exercise rejection): every emitted
// plan passes local verification, and every rejection carries a
// counterexample.
func FuzzSynthesize(f *testing.F) {
	for seed := int64(0); seed < 25; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		scn, ok := generateOnce(seed)
		if !ok {
			return
		}
		if seed%3 == 0 {
			corrupt(scn, seed)
		}
		plan, err := Synthesize(scn)
		if err != nil {
			rej, isRej := err.(*Rejection)
			if !isRej {
				t.Fatalf("seed %d: non-Rejection error %v", seed, err)
			}
			if rej.Counterexample() == "" {
				t.Fatalf("seed %d: rejection without counterexample: %v", seed, rej)
			}
			return
		}
		if err := VerifyPlan(scn, plan); err != nil {
			t.Fatalf("seed %d: emitted plan fails local verification: %v", seed, err)
		}
	})
}

// corrupt knocks one rule out of the old configuration, which may leave
// it property-violating (forcing a validate rejection) or still clean.
func corrupt(scn *Scenario, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var sws []string
	for _, sw := range scn.Switches() {
		if len(scn.Old[sw]) > 0 {
			sws = append(sws, sw)
		}
	}
	if len(sws) == 0 {
		return
	}
	sw := sws[rng.Intn(len(sws))]
	i := rng.Intn(len(scn.Old[sw]))
	scn.Old[sw] = append(scn.Old[sw][:i], scn.Old[sw][i+1:]...)
}
