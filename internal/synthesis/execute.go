package synthesis

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cicero/internal/core"
	"cicero/internal/fabric"
	"cicero/internal/livenet"
	"cicero/internal/netprop"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/routing"
	"cicero/internal/scheduler"
)

// ExecOptions tunes plan execution.
type ExecOptions struct {
	// Backend selects the transport: "sim" (discrete-event simulator),
	// "inproc" (live goroutine fabric), or "tcp" (live TCP loopback).
	Backend string
	// Seed seeds the protocol stack (jitter, elections).
	Seed int64
	// Timeout bounds live-backend completion waits (default 30s).
	Timeout time.Duration
	// SimBudget bounds the simulated clock (default 1s); the invariant
	// tick keeps firing until then.
	SimBudget time.Duration
	// CheckInterval spaces the simulator's invariant ticks (default 2ms).
	CheckInterval time.Duration
}

func (o ExecOptions) defaulted() ExecOptions {
	if o.Backend == "" {
		o.Backend = "sim"
	}
	if o.Timeout == 0 {
		o.Timeout = 30 * time.Second
	}
	if o.SimBudget == 0 {
		o.SimBudget = time.Second
	}
	if o.CheckInterval == 0 {
		o.CheckInterval = 2 * time.Millisecond
	}
	return o
}

// ExecResult reports one plan execution.
type ExecResult struct {
	Backend string
	// Applied counts valid switch applies observed for the plan.
	Applied int
	// Checks counts property evaluations (simulator ticks plus replayed
	// apply states).
	Checks int
	// Violations are the deduplicated property violations observed by the
	// invariant plane during and after execution. A verified plan must
	// produce none.
	Violations []netprop.Violation
}

// planApp is the routing application that answers a registered
// policy-change event with the synthesized plan's mods. It is pure data,
// so every controller replica plans identically.
type planApp struct {
	plans map[openflow.MsgID][]openflow.FlowMod
}

// Name implements routing.App.
func (a *planApp) Name() string { return "synth-plan" }

// PlanFlow implements routing.App.
func (a *planApp) PlanFlow(ev protocol.Event) ([]openflow.FlowMod, error) {
	if ev.Kind != protocol.EventPolicyChange {
		return nil, nil
	}
	return a.plans[ev.ID], nil
}

// recorder captures switch apply decisions (via the dataplane apply
// hook) for offline replay verification. Live switches run on their own
// goroutines, hence the mutex.
type recorder struct {
	mu     sync.Mutex
	seen   map[string]bool
	order  []openflow.FlowMod
	valid  int
	bogus  int
	origin string
}

func (rec *recorder) hook(sw string, id openflow.MsgID, phase uint64, mods []openflow.FlowMod, valid bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	key := fmt.Sprintf("%s|%s", sw, id)
	if rec.seen[key] {
		return
	}
	rec.seen[key] = true
	if !valid {
		rec.bogus++
		return
	}
	if id.Origin == rec.origin {
		rec.valid++
	}
	rec.order = append(rec.order, mods...)
}

func (rec *recorder) validCount() int {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.valid
}

func (rec *recorder) applyOrder() []openflow.FlowMod {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]openflow.FlowMod(nil), rec.order...)
}

// Execute runs a synthesized plan through the full BFT +
// threshold-signature pipeline: the old configuration is pre-seeded into
// the switch tables, a policy-change event is raised, the controllers
// plan it through the registry app, and the Planned scheduler replays the
// synthesized dependency graph. The shared invariant walkers
// independently confirm every promised property — sampled on the
// simulator clock for the sim backend, and by exact replay of the
// recorded apply order on every backend — and the final tables must be
// exactly the new configuration.
func Execute(scn *Scenario, plan *Plan, opt ExecOptions) (*ExecResult, error) {
	opt = opt.defaulted()
	evID := openflow.MsgID{Origin: "synth/" + scn.Name, Seq: 1}
	origin := fmt.Sprintf("%s/d%d", evID, 0)
	rec := &recorder{seen: map[string]bool{}, origin: origin}
	app := &planApp{plans: map[openflow.MsgID][]openflow.FlowMod{evID: plan.Mods()}}

	cfg := core.Config{
		Graph:           scn.Graph,
		Seed:            opt.Seed,
		Scheduler:       scheduler.Planned{Label: "synth", ByOrigin: map[string][][]int{origin: plan.Deps}},
		AppFactory:      func() routing.App { return app },
		SwitchApplyHook: rec.hook,
	}
	live := opt.Backend != "sim"
	var closeFab func()
	if live {
		fab, cls, err := newLiveFabric(opt.Backend)
		if err != nil {
			return nil, err
		}
		closeFab = cls
		cfg.Fabric = fab
		cfg.CryptoReal = true
		// Live runs share wall-clock cores with the whole harness; a
		// sub-second view-change timeout would misread scheduling hiccups
		// as a failed primary.
		cfg.ViewChangeTimeout = 5 * time.Second
	}
	n, err := core.Build(cfg)
	if err != nil {
		if closeFab != nil {
			closeFab()
		}
		return nil, fmt.Errorf("synthesis: build %s network: %w", opt.Backend, err)
	}
	if closeFab != nil {
		defer closeFab()
	}

	// Pre-seed the old configuration.
	for _, sw := range scn.Switches() {
		sw := sw
		seed := func() {
			t := n.Switches[sw].Table()
			for _, r := range scn.Old[sw] {
				t.Add(r)
			}
		}
		if live {
			if err := invokeWait(n.Fab, fabric.NodeID(sw), seed, opt.Timeout); err != nil {
				return nil, err
			}
		} else {
			seed()
		}
	}

	emitter := n.Switches[scn.Switches()[0]]
	ev := protocol.Event{ID: evID, Kind: protocol.EventPolicyChange}
	res := &ExecResult{Backend: opt.Backend}
	viol := &collector{seen: make(map[string]bool)}

	if live {
		if err := invokeWait(n.Fab, fabric.NodeID(emitter.ID()), func() { emitter.EmitEvent(ev) }, opt.Timeout); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(opt.Timeout)
		for rec.validCount() < len(plan.Updates) {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("synthesis: %s backend applied %d/%d updates within %v",
					opt.Backend, rec.validCount(), len(plan.Updates), opt.Timeout)
			}
			time.Sleep(25 * time.Millisecond)
		}
	} else {
		n.Sim.At(0, func() { emitter.EmitEvent(ev) })
		// Invariant tick: sample the live tables on the simulated clock
		// for the whole budget.
		var tick func()
		tick = func() {
			tables := simTables(n, scn)
			for _, v := range netprop.Check(tables, scn.Hosts, scn.Props) {
				viol.report(v.Property, v.DedupKey, "t="+n.Sim.Now().String()+" "+v.Detail, v.Token)
			}
			res.Checks++
			if n.Sim.Now()+opt.CheckInterval <= opt.SimBudget {
				n.Sim.Schedule(opt.CheckInterval, tick)
			}
		}
		n.Sim.Schedule(opt.CheckInterval, tick)
		if _, err := n.Sim.Run(); err != nil {
			return nil, fmt.Errorf("synthesis: simulation: %w", err)
		}
		if got := rec.validCount(); got < len(plan.Updates) {
			return nil, fmt.Errorf("synthesis: sim backend applied %d/%d updates", got, len(plan.Updates))
		}
	}
	res.Applied = rec.validCount()

	// Exact replay: re-walk every intermediate state the switches
	// actually traversed, in recorded apply order.
	tables := scn.TablesOld()
	for _, mod := range rec.applyOrder() {
		if t := tables[mod.Switch]; t != nil {
			t.Apply(mod)
		}
		for _, v := range netprop.Check(tables, scn.Hosts, scn.Props) {
			viol.report(v.Property, v.DedupKey, "replay: "+v.Detail, v.Token)
		}
		res.Checks++
	}

	// The final tables must be exactly the new configuration — both in
	// the replay and on the real switches.
	want := scn.TablesNew()
	for _, sw := range scn.Switches() {
		if !sameRules(tables[sw].Rules(), want[sw].Rules()) {
			viol.report("final-state", "replay|"+sw,
				fmt.Sprintf("replayed final table of %s differs from the new configuration", sw), sw)
		}
	}
	finals := make(map[string][]openflow.Rule, len(n.Switches))
	for _, sw := range scn.Switches() {
		sw := sw
		read := func() { finals[sw] = n.Switches[sw].Table().Rules() }
		if live {
			if err := invokeWait(n.Fab, fabric.NodeID(sw), read, opt.Timeout); err != nil {
				return nil, err
			}
		} else {
			read()
		}
	}
	for _, sw := range scn.Switches() {
		if !sameRules(finals[sw], want[sw].Rules()) {
			viol.report("final-state", "switch|"+sw,
				fmt.Sprintf("switch %s final table differs from the new configuration: got %v want %v",
					sw, finals[sw], want[sw].Rules()), sw)
		}
	}
	res.Violations = viol.violations
	return res, nil
}

// simTables snapshots the simulator switches' tables (safe on the sim
// loop: ticks run between events).
func simTables(n *core.Network, scn *Scenario) map[string]*openflow.FlowTable {
	tables := make(map[string]*openflow.FlowTable, len(n.Switches))
	for _, sw := range scn.Switches() {
		tables[sw] = n.Switches[sw].Table()
	}
	return tables
}

// collector gathers deduplicated violations (mirrors netprop's).
type collector struct {
	seen       map[string]bool
	violations []netprop.Violation
}

func (c *collector) report(property, dedupKey, detail, token string) {
	key := property + "|" + dedupKey
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.violations = append(c.violations, netprop.Violation{Property: property, DedupKey: dedupKey, Detail: detail, Token: token})
}

// newLiveFabric constructs the selected live backend.
func newLiveFabric(backend string) (fabric.Fabric, func(), error) {
	codec := protocol.NewWireCodec(nil)
	switch backend {
	case "inproc":
		f := livenet.NewInProc(codec)
		return f, f.Close, nil
	case "tcp":
		f, err := livenet.NewTCP(codec)
		if err != nil {
			return nil, nil, err
		}
		return f, f.Close, nil
	default:
		return nil, nil, fmt.Errorf("synthesis: unknown backend %q (have sim, inproc, tcp)", backend)
	}
}

// invokeWait runs fn in the node's serial context and waits for it.
func invokeWait(fab fabric.Fabric, id fabric.NodeID, fn func(), timeout time.Duration) error {
	done := make(chan struct{})
	fab.Invoke(id, func() {
		fn()
		close(done)
	})
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("synthesis: node %s did not run invoke within %v", id, timeout)
	}
}

// SweepOptions tunes a randomized synthesis sweep.
type SweepOptions struct {
	// Seeds is how many consecutive seeds to run (default 10), starting
	// at StartSeed (default 1).
	Seeds     int
	StartSeed int64
	// Backends lists the execution backends per seed (default sim +
	// inproc).
	Backends []string
	// Canary plants a bad-ordering mutant per seed and requires local
	// verification to catch it (default on via Sweep's callers).
	Canary bool
	// Timeout bounds each live execution.
	Timeout time.Duration
	// Progress, when set, is called after each seed finishes (plan is
	// nil when generation failed; failures is the running total).
	Progress func(done, total int, seed int64, plan *Plan, failures int)
}

// BackendStats aggregates one backend's sweep results.
type BackendStats struct {
	Executed   int
	Applied    int
	Checks     int
	Violations int
}

// SweepResult aggregates a randomized synthesis sweep.
type SweepResult struct {
	Seeds        int
	Plans        int
	Updates      int
	TwoPhase     int
	CanaryTotal  int
	CanaryCaught int
	PerBackend   map[string]*BackendStats
	// Failures lists seed-level errors and violations, rendered.
	Failures []string
}

// Violations reports the total violation count across backends.
func (r *SweepResult) Violations() int {
	total := 0
	for _, b := range r.PerBackend {
		total += b.Violations
	}
	return total
}

// Backends returns the sweep's backend names, sorted.
func (r *SweepResult) Backends() []string {
	out := make([]string, 0, len(r.PerBackend))
	for b := range r.PerBackend {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Sweep generates, synthesizes, canaries, and executes one scenario per
// seed on every backend: the end-to-end acceptance loop. A healthy sweep
// has zero violations, zero failures, and every canary caught.
func Sweep(opt SweepOptions) *SweepResult {
	if opt.Seeds == 0 {
		opt.Seeds = 10
	}
	if opt.StartSeed == 0 {
		opt.StartSeed = 1
	}
	if len(opt.Backends) == 0 {
		opt.Backends = []string{"sim", "inproc"}
	}
	res := &SweepResult{Seeds: opt.Seeds, PerBackend: map[string]*BackendStats{}}
	for _, b := range opt.Backends {
		res.PerBackend[b] = &BackendStats{}
	}
	for i := 0; i < opt.Seeds; i++ {
		seed := opt.StartSeed + int64(i)
		scn, plan, err := Generate(seed)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("seed %d: %v", seed, err))
			if opt.Progress != nil {
				opt.Progress(i+1, opt.Seeds, seed, nil, len(res.Failures))
			}
			continue
		}
		res.Plans++
		res.Updates += len(plan.Updates)
		for _, c := range plan.Classes {
			if c.TwoPhase {
				res.TwoPhase++
			}
		}
		if opt.Canary {
			res.CanaryTotal++
			mutant, edge, ok := PlantBadOrdering(scn, plan, seed)
			if !ok {
				res.Failures = append(res.Failures, fmt.Sprintf("seed %d: canary not plantable", seed))
			} else if err := VerifyPlan(scn, mutant); err != nil {
				res.CanaryCaught++
			} else {
				res.Failures = append(res.Failures,
					fmt.Sprintf("seed %d: canary MISSED: dropped edge %s passed local verification", seed, edge))
			}
		}
		for _, backend := range opt.Backends {
			er, err := Execute(scn, plan, ExecOptions{Backend: backend, Seed: seed, Timeout: opt.Timeout})
			if err != nil {
				res.Failures = append(res.Failures, fmt.Sprintf("seed %d [%s]: %v", seed, backend, err))
				continue
			}
			st := res.PerBackend[backend]
			st.Executed++
			st.Applied += er.Applied
			st.Checks += er.Checks
			st.Violations += len(er.Violations)
			for _, v := range er.Violations {
				res.Failures = append(res.Failures, fmt.Sprintf("seed %d [%s]: %s", seed, backend, v))
			}
		}
		if opt.Progress != nil {
			opt.Progress(i+1, opt.Seeds, seed, plan, len(res.Failures))
		}
	}
	return res
}
