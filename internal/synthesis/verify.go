package synthesis

import (
	"fmt"
	"math/rand"
	"sort"

	"cicero/internal/netprop"
	"cicero/internal/openflow"
)

// stateCap bounds the number of reachable per-class states VerifyPlan
// enumerates. Within-class dependencies are chains, so enumeration is
// linear for synthesized plans; the cap only bites for adversarially
// mutated plans (dropped edges widen the reachable-state lattice).
const stateCap = 4096

// VerifyError reports a plan that failed verification: a structural
// defect, a final state that is not the new configuration, or a reachable
// intermediate state violating the property set.
type VerifyError struct {
	// Class is the offending class index, or -1 for structural/final
	// defects.
	Class int
	// State lists the applied update indices of the violating state.
	State []int
	// Detail explains structural/final defects.
	Detail string
	// Violations are the property violations of the offending state.
	Violations []netprop.Violation
}

// Error implements error.
func (e *VerifyError) Error() string {
	if e.Detail != "" && len(e.Violations) == 0 {
		return "plan verification failed: " + e.Detail
	}
	return fmt.Sprintf("plan verification failed: class %d state %v has %d violations (first: %s)",
		e.Class, e.State, len(e.Violations), e.Violations[0])
}

// verifyViolations extracts the violation set from a VerifyPlan error.
func verifyViolations(err error) []netprop.Violation {
	if ve, ok := err.(*VerifyError); ok {
		return ve.Violations
	}
	return nil
}

// VerifyPlan certifies a plan against its scenario with per-node local
// verification: the dependency graph must be well-formed and acyclic, the
// fully applied plan must yield exactly the new configuration, and every
// reachable per-class intermediate state — every downward-closed subset
// of the class's dependency sub-DAG, other classes held at the old
// configuration — must admit clean local certificates
// (netprop.LocalVerify). Class independence makes the per-class
// enumeration sound: no lookup for one class's probes ever resolves to
// another class's rules, so a global interleaving is clean iff its
// per-class projections are.
func VerifyPlan(scn *Scenario, plan *Plan) error {
	n := len(plan.Updates)
	if len(plan.Deps) != n {
		return &VerifyError{Class: -1, Detail: fmt.Sprintf("deps length %d != updates length %d", len(plan.Deps), n)}
	}
	indegree := make([]int, n)
	for i, deps := range plan.Deps {
		for _, d := range deps {
			if d < 0 || d >= n || d == i {
				return &VerifyError{Class: -1, Detail: fmt.Sprintf("update %d has out-of-range dependency %d", i, d)}
			}
			indegree[i]++
		}
	}
	// Kahn's algorithm: every update must be schedulable.
	adj := make([][]int, n)
	for i, deps := range plan.Deps {
		for _, d := range deps {
			adj[d] = append(adj[d], i)
		}
	}
	queue := []int{}
	for i, d := range indegree {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		done++
		for _, y := range adj[x] {
			indegree[y]--
			if indegree[y] == 0 {
				queue = append(queue, y)
			}
		}
	}
	if done != n {
		return &VerifyError{Class: -1, Detail: "dependency graph has a cycle"}
	}

	// Every update must belong to exactly one class.
	owned := make([]int, n)
	for i := range owned {
		owned[i] = -1
	}
	for ci, cp := range plan.Classes {
		for _, i := range cp.Indices {
			if i < 0 || i >= n || owned[i] != -1 {
				return &VerifyError{Class: ci, Detail: fmt.Sprintf("update %d missing or claimed twice in class metadata", i)}
			}
			owned[i] = ci
		}
	}
	for i, c := range owned {
		if c == -1 {
			return &VerifyError{Class: -1, Detail: fmt.Sprintf("update %d belongs to no class", i)}
		}
	}

	// Final state: the plan must land exactly on the new configuration.
	final := scn.TablesOld()
	for _, u := range plan.Updates {
		t := final[u.Mod.Switch]
		if t == nil {
			return &VerifyError{Class: -1, Detail: fmt.Sprintf("update %s targets unknown switch %s", u.ID, u.Mod.Switch)}
		}
		t.Apply(u.Mod)
	}
	want := scn.TablesNew()
	for _, sw := range scn.Switches() {
		if !sameRules(final[sw].Rules(), want[sw].Rules()) {
			return &VerifyError{Class: -1,
				Detail: fmt.Sprintf("final state of switch %s differs from the new configuration:\ngot  %v\nwant %v",
					sw, final[sw].Rules(), want[sw].Rules())}
		}
	}

	// Per-class reachable states.
	oldTables := scn.TablesOld()
	for ci, cp := range plan.Classes {
		if err := verifyClassStates(scn, oldTables, plan, ci, cp); err != nil {
			return err
		}
	}
	return nil
}

// verifyClassStates locally verifies every downward-closed subset of one
// class's dependency sub-DAG (capped at stateCap states).
func verifyClassStates(scn *Scenario, oldTables map[string]*openflow.FlowTable, plan *Plan, ci int, cp ClassPlan) error {
	idx := cp.Indices
	pos := make(map[int]int, len(idx)) // plan index -> local position
	for li, i := range idx {
		pos[i] = li
	}
	// Local dependency lists, restricted to the class.
	deps := make([][]int, len(idx))
	for li, i := range idx {
		for _, d := range plan.Deps[i] {
			if ld, ok := pos[d]; ok {
				deps[li] = append(deps[li], ld)
			}
		}
	}
	subsetKey := func(s []bool) string {
		b := make([]byte, len(s))
		for i, v := range s {
			if v {
				b[i] = '1'
			} else {
				b[i] = '0'
			}
		}
		return string(b)
	}
	seen := map[string]bool{}
	frontier := [][]bool{make([]bool, len(idx))}
	seen[subsetKey(frontier[0])] = true
	for len(frontier) > 0 && len(seen) <= stateCap {
		s := frontier[0]
		frontier = frontier[1:]
		// Check this state.
		tables := cloneTables(oldTables)
		var applied []int
		for li, in := range s {
			if !in {
				continue
			}
			u := plan.Updates[idx[li]]
			tables[u.Mod.Switch].Apply(u.Mod)
			applied = append(applied, idx[li])
		}
		if v := netprop.LocalVerify(tables, scn.Hosts, scn.Props); len(v) > 0 {
			return &VerifyError{Class: ci, State: applied, Violations: v}
		}
		// Expand: any unapplied op whose deps are all in.
		for li := range idx {
			if s[li] {
				continue
			}
			ok := true
			for _, d := range deps[li] {
				if !s[d] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			next := append([]bool(nil), s...)
			next[li] = true
			k := subsetKey(next)
			if !seen[k] {
				seen[k] = true
				frontier = append(frontier, next)
			}
		}
	}
	return nil
}

// sameRules compares two rule sets ignoring order.
func sameRules(a, b []openflow.Rule) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]openflow.Rule(nil), a...)
	bs := append([]openflow.Rule(nil), b...)
	less := func(s []openflow.Rule) func(i, j int) bool {
		return func(i, j int) bool { return fmt.Sprint(s[i]) < fmt.Sprint(s[j]) }
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// BadEdge identifies one dropped dependency: To's wait on From.
type BadEdge struct {
	From, To int
}

// String renders the edge.
func (e BadEdge) String() string { return fmt.Sprintf("%d->%d", e.From, e.To) }

// PlantBadOrdering builds the bad-ordering canary: it drops one
// load-bearing dependency edge from the plan — chosen in seeded random
// order — and returns the mutated plan, which local verification must
// reject (the newly reachable state violates a property). ok=false means
// the plan has no load-bearing edge to drop (every dependency is slack).
func PlantBadOrdering(scn *Scenario, plan *Plan, seed int64) (*Plan, BadEdge, bool) {
	var edges []BadEdge
	for to, deps := range plan.Deps {
		for _, from := range deps {
			edges = append(edges, BadEdge{from, to})
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		mutant := &Plan{Name: plan.Name, Updates: plan.Updates, Classes: plan.Classes}
		mutant.Deps = make([][]int, len(plan.Deps))
		for i, deps := range plan.Deps {
			for _, d := range deps {
				if i == e.To && d == e.From {
					continue
				}
				mutant.Deps[i] = append(mutant.Deps[i], d)
			}
		}
		if VerifyPlan(scn, mutant) != nil {
			return mutant, e, true
		}
	}
	return nil, BadEdge{}, false
}
