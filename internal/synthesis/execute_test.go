package synthesis

import (
	"testing"
	"time"
)

// runBoth executes one plan on the simulator and the live in-process
// fabric and requires a clean, complete run on each.
func runBoth(t *testing.T, scn *Scenario, plan *Plan, seed int64) {
	t.Helper()
	for _, backend := range []string{"sim", "inproc"} {
		res, err := Execute(scn, plan, ExecOptions{Backend: backend, Seed: seed, Timeout: 60 * time.Second})
		if err != nil {
			t.Fatalf("[%s] %v", backend, err)
		}
		if res.Applied != len(plan.Updates) {
			t.Fatalf("[%s] applied %d/%d updates", backend, res.Applied, len(plan.Updates))
		}
		if len(res.Violations) > 0 {
			t.Fatalf("[%s] %d violations, first: %s", backend, len(res.Violations), res.Violations[0])
		}
		if res.Checks == 0 {
			t.Fatalf("[%s] invariant plane never ran", backend)
		}
	}
}

// TestExecuteCrossChecked runs the table-driven scenarios end to end on
// simnet and livenet InProc: full BFT ordering, threshold signatures,
// switch-side verification, and the shared invariant walkers confirming
// every promised property at every observed state.
func TestExecuteCrossChecked(t *testing.T) {
	cases := []struct {
		name string
		scn  func() *Scenario
	}{
		{"fresh-install", freshInstall},
		{"teardown-all", teardownAll},
		{"reroute", rerouteScenario},
		{"swap-gadget", swapGadget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scn := tc.scn()
			plan, err := Synthesize(scn)
			if err != nil {
				t.Fatal(err)
			}
			runBoth(t, scn, plan, 7)
		})
	}
}

// TestExecuteGeneratedSweep is the miniature acceptance sweep: generated
// scenarios through both backends with canaries, zero tolerance.
func TestExecuteGeneratedSweep(t *testing.T) {
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	res := Sweep(SweepOptions{Seeds: seeds, StartSeed: 11, Canary: true, Timeout: 60 * time.Second})
	if len(res.Failures) > 0 {
		t.Fatalf("sweep failures: %v", res.Failures)
	}
	if res.CanaryCaught != res.CanaryTotal || res.CanaryTotal != seeds {
		t.Fatalf("canaries caught %d/%d (want %d)", res.CanaryCaught, res.CanaryTotal, seeds)
	}
	for _, b := range res.Backends() {
		st := res.PerBackend[b]
		if st.Executed != res.Plans {
			t.Fatalf("[%s] executed %d/%d plans", b, st.Executed, res.Plans)
		}
		if st.Violations != 0 {
			t.Fatalf("[%s] %d violations", b, st.Violations)
		}
	}
}
