package synthesis

import (
	"fmt"
	"sort"
	"strings"

	"cicero/internal/netprop"
	"cicero/internal/openflow"
	"cicero/internal/scheduler"
)

// Plan is a dependency-ordered, verified update plan. Updates holds one
// scheduler update per table change; Deps is positional — Deps[i] lists
// the indices Updates[i] must wait for (within-class chains; ops in
// different classes carry no mutual edges and may run concurrently).
type Plan struct {
	// Name is the scenario name the plan was synthesized for.
	Name    string
	Updates []scheduler.Update
	Deps    [][]int
	Classes []ClassPlan
}

// ClassPlan describes one packet class's slice of the plan.
type ClassPlan struct {
	// Flows lists the class's concrete probe flows ("src->dst"), sorted.
	Flows []string
	// Indices are the class's positions in Plan.Updates, ascending. The
	// dependency chain runs through them in order.
	Indices []int
	// TwoPhase marks a class that needed the break-before-make fallback.
	TwoPhase bool
	// Barrier is the offset in Indices where the install phase starts
	// (two-phase only; -1 for single-phase classes). Every index before it
	// is a teardown delete.
	Barrier int
	// FallbackReason carries the counterexample that ruled out a
	// single-phase order ("" for single-phase classes).
	FallbackReason string
}

// Summary renders the plan's shape for reports.
func (p *Plan) Summary() string {
	two := 0
	for _, c := range p.Classes {
		if c.TwoPhase {
			two++
		}
	}
	return fmt.Sprintf("%d updates in %d classes (%d two-phase)", len(p.Updates), len(p.Classes), two)
}

// Mods returns the plan's flow mods in update order.
func (p *Plan) Mods() []openflow.FlowMod {
	out := make([]openflow.FlowMod, len(p.Updates))
	for i, u := range p.Updates {
		out[i] = u.Mod
	}
	return out
}

// Synthesize computes a verified update plan carrying the scenario's old
// configuration into its new one. Per packet class it searches for a
// single-phase order whose every intermediate state satisfies the
// property set; when none exists it falls back to a two-phase
// break-before-make schedule (teardown the class's old rules — plus the
// closure of unchanged rules whose walks depend on them — then install
// the new side). The returned plan is certified with per-node local
// verification over every reachable per-class state; any rejection is a
// *Rejection carrying a counterexample.
func Synthesize(scn *Scenario) (*Plan, error) {
	if rej := validate(scn); rej != nil {
		return nil, rej
	}
	ops, rej := diffOps(scn)
	if rej != nil {
		return nil, rej
	}

	oldTables := scn.TablesOld()
	certsOld, vOld := netprop.Certify(oldTables, scn.Hosts, scn.Props)
	certsNew, vNew := netprop.Certify(scn.TablesNew(), scn.Hosts, scn.Props)
	if len(vOld) > 0 || len(vNew) > 0 {
		// validate() already walked both configs; certification failing
		// here would mean the walkers and the certifier disagree.
		return nil, &Rejection{Stage: "validate", Reason: "endpoint configuration is not certifiable",
			Violations: append(vOld, vNew...)}
	}

	plan := &Plan{Name: scn.Name}
	for _, class := range interactionClasses(ops) {
		cp, classOps, rej := planClass(scn, oldTables, certsOld, certsNew, ops, class)
		if rej != nil {
			return nil, rej
		}
		base := len(plan.Updates)
		for i, o := range classOps {
			plan.Updates = append(plan.Updates, scheduler.Update{
				ID:  openflow.MsgID{Origin: scn.Name, Seq: uint64(base + i)},
				Mod: o.Mod,
			})
			if i == 0 {
				plan.Deps = append(plan.Deps, nil)
			} else {
				plan.Deps = append(plan.Deps, []int{base + i - 1})
			}
			cp.Indices = append(cp.Indices, base+i)
		}
		plan.Classes = append(plan.Classes, cp)
	}

	if err := VerifyPlan(scn, plan); err != nil {
		return nil, &Rejection{Stage: "certify",
			Reason:   "synthesized plan failed local verification",
			Evidence: err.Error(), Violations: verifyViolations(err)}
	}
	return plan, nil
}

// planClass orders one packet class: single-phase if possible, otherwise
// two-phase with teardown closure. It returns the class metadata (Indices
// unfilled) and the class's ops in committed order.
func planClass(scn *Scenario, oldTables map[string]*openflow.FlowTable,
	certsOld, certsNew *netprop.Certificates, ops []op, class []int) (ClassPlan, []op, *Rejection) {

	flows := map[string]bool{}
	for _, oi := range class {
		src, dst := ops[oi].probe()
		flows[src+"->"+dst] = true
	}
	cp := ClassPlan{Flows: sortedKeys(flows), Barrier: -1}

	// Single-phase attempt: greedy verified order over the diff ops,
	// trying installs egress-first (ascending new-config distance) and
	// removals ingress-first (descending old-config distance).
	cands := make([]op, len(class))
	for i, oi := range class {
		cands[i] = ops[oi]
	}
	sortOps(cands, certsOld, certsNew)
	order, cex := greedyOrder(scn, cloneTables(oldTables), cands, "order")
	if cex == nil {
		return cp, order, nil
	}

	// Two-phase fallback: break before make.
	cp.TwoPhase = true
	cp.FallbackReason = cex.Counterexample()
	teardown, install, rej := twoPhaseOps(scn, oldTables, cands)
	if rej != nil {
		return cp, nil, rej
	}
	sortOps(teardown, certsOld, certsNew)
	sortOps(install, certsOld, certsNew)
	downOrder, cex := greedyOrder(scn, cloneTables(oldTables), teardown, "teardown")
	if cex != nil {
		return cp, nil, cex
	}
	mid := cloneTables(oldTables)
	for _, o := range downOrder {
		mid[o.Mod.Switch].Apply(o.Mod)
	}
	upOrder, cex := greedyOrder(scn, mid, install, "install")
	if cex != nil {
		return cp, nil, cex
	}
	cp.Barrier = len(downOrder)
	return cp, append(downOrder, upOrder...), nil
}

// twoPhaseOps splits a class into teardown deletes and install adds. The
// teardown set is the class's old-side rules plus the closure of
// unchanged rules whose forwarding walks traverse a torn rule — leaving
// those installed would blackhole them mid-teardown. Closure members are
// deleted and then re-installed unchanged.
func twoPhaseOps(scn *Scenario, oldTables map[string]*openflow.FlowTable, class []op) (teardown, install []op, rej *Rejection) {
	torn := map[slot]bool{}
	classOld := map[slot]bool{}
	for _, o := range class {
		if o.Old != nil {
			s := slot{o.Mod.Switch, *o.Old}
			torn[s] = true
			classOld[s] = true
		}
		if o.Mod.Op == openflow.FlowAdd {
			install = append(install, op{Mod: o.Mod})
		}
	}

	// Closure fixpoint: any still-installed rule whose walk looks up a
	// torn rule joins the teardown set.
	switches := scn.Switches()
	for changed := true; changed; {
		changed = false
		for _, sw := range switches {
			for _, r := range oldTables[sw].Rules() {
				s := slot{sw, r}
				if torn[s] || r.Action.Type != openflow.ActionOutput || r.Match.Dst == openflow.Wildcard {
					continue
				}
				if walkUses(oldTables, scn.Hosts, sw, r, torn) {
					torn[s] = true
					changed = true
				}
			}
		}
	}

	// Materialize: deletes for every torn slot, re-adds for closure
	// members the class itself does not reinstall.
	slots := make([]slot, 0, len(torn))
	for s := range torn {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(a, b int) bool {
		if slots[a].sw != slots[b].sw {
			return slots[a].sw < slots[b].sw
		}
		return fmt.Sprint(slots[a].rule) < fmt.Sprint(slots[b].rule)
	})
	for _, s := range slots {
		if rej := exactDelete(scn, s.sw, s.rule); rej != nil {
			return nil, nil, rej
		}
		old := s.rule
		teardown = append(teardown, op{Mod: openflow.FlowMod{Op: openflow.FlowDelete, Switch: s.sw, Rule: s.rule}, Old: &old})
		if !classOld[s] {
			install = append(install, op{Mod: openflow.FlowMod{Op: openflow.FlowAdd, Switch: s.sw, Rule: s.rule}})
		}
	}
	return teardown, install, nil
}

// slot pins one installed rule to its switch.
type slot struct {
	sw   string
	rule openflow.Rule
}

// walkUses reports whether the forwarding walk of rule r (from its own
// switch) resolves any lookup to a rule in the torn set.
func walkUses(tables map[string]*openflow.FlowTable, hosts map[string]bool, sw string, r openflow.Rule, torn map[slot]bool) bool {
	src, dst := probeOf(r)
	tr := netprop.TracePath(tables, hosts, sw, src, dst)
	for _, cur := range tr.Visited {
		t := tables[cur]
		if t == nil {
			break
		}
		used, ok := t.Lookup(src, dst)
		if !ok {
			break
		}
		if torn[slot{cur, used}] {
			return true
		}
	}
	return false
}

// greedyOrder commits candidate ops one at a time onto scratch, always
// picking the first candidate (in the given heuristic order) whose
// application leaves the full property set satisfied. When no candidate
// applies cleanly the search is stuck and the first candidate's violation
// set is the counterexample.
func greedyOrder(scn *Scenario, scratch map[string]*openflow.FlowTable, cands []op, stage string) ([]op, *Rejection) {
	remaining := append([]op(nil), cands...)
	var order []op
	for len(remaining) > 0 {
		committed := -1
		var firstViol []netprop.Violation
		firstOp := ""
		for i, o := range remaining {
			snapshot := scratch[o.Mod.Switch].Rules()
			scratch[o.Mod.Switch].Apply(o.Mod)
			v := netprop.Check(scratch, scn.Hosts, scn.Props)
			if len(v) == 0 {
				committed = i
				break
			}
			restoreTable(scratch, o.Mod.Switch, snapshot)
			if firstViol == nil {
				firstViol, firstOp = v, o.String()
			}
		}
		if committed < 0 {
			return nil, &Rejection{Stage: stage,
				Reason:     fmt.Sprintf("no safe next update after %d of %d committed", len(order), len(cands)),
				Evidence:   fmt.Sprintf("first stuck candidate: %s", firstOp),
				Violations: firstViol}
		}
		order = append(order, remaining[committed])
		remaining = append(remaining[:committed], remaining[committed+1:]...)
	}
	return order, nil
}

// restoreTable rebuilds one switch's table from a rule snapshot.
func restoreTable(tables map[string]*openflow.FlowTable, sw string, rules []openflow.Rule) {
	t := openflow.NewFlowTable()
	for _, r := range rules {
		t.Add(r)
	}
	tables[sw] = t
}

// sortOps orders candidates for the greedy search: adds egress-first
// (ascending distance-to-delivery in the new configuration), then deletes
// ingress-first (descending distance in the old configuration). This is
// the reverse-path intuition — grow the new path from its tail, shrink
// the old path from its head — and makes the greedy search succeed on the
// first try for reroute-style diffs.
func sortOps(cands []op, certsOld, certsNew *netprop.Certificates) {
	key := func(o op) (int, int) {
		src, dst := o.probe()
		if o.Mod.Op == openflow.FlowAdd {
			return 0, distOf(certsNew, src, dst, o.Mod.Switch)
		}
		return 1, -distOf(certsOld, src, dst, o.Mod.Switch)
	}
	sort.SliceStable(cands, func(a, b int) bool {
		ka, da := key(cands[a])
		kb, db := key(cands[b])
		if ka != kb {
			return ka < kb
		}
		if da != db {
			return da < db
		}
		return cands[a].String() < cands[b].String()
	})
}

// distOf returns the certified distance-to-delivery of (src, dst) at sw,
// or 0 when the flow is not certified there (drop rules, absent flows).
func distOf(certs *netprop.Certificates, src, dst, sw string) int {
	if c := certs.Cert(src, dst, sw); c != nil {
		return c.Dist
	}
	return 0
}

// sortedKeys returns a map's keys, sorted.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the class for reports.
func (c ClassPlan) String() string {
	mode := "single-phase"
	if c.TwoPhase {
		mode = "two-phase"
	}
	return fmt.Sprintf("class{%s} %d updates %s", strings.Join(c.Flows, ","), len(c.Indices), mode)
}
