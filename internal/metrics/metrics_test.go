package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSamplesStatistics(t *testing.T) {
	var s Samples
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if got := s.Percentile(0.5); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
}

func TestSamplesEmpty(t *testing.T) {
	var s Samples
	if s.Mean() != 0 || s.Percentile(0.5) != 0 || s.CDF(10) != nil {
		t.Error("empty samples should yield zeros and nil CDF")
	}
}

func TestAddDuration(t *testing.T) {
	var s Samples
	s.AddDuration(2500 * time.Microsecond)
	if got := s.Mean(); got != 2.5 {
		t.Errorf("AddDuration stored %v ms, want 2.5", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var s Samples
		for _, v := range raw {
			s.Add(v)
		}
		cdf := s.CDF(20)
		if len(raw) == 0 {
			return cdf == nil
		}
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X < cdf[i-1].X || cdf[i].P <= cdf[i-1].P {
				return false
			}
		}
		return cdf[len(cdf)-1].P == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileBounds(t *testing.T) {
	var s Samples
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(-0.5); got != 1 {
		t.Errorf("p<0 = %v, want min", got)
	}
	if got := s.Percentile(1.5); got != 100 {
		t.Errorf("p>1 = %v, want max", got)
	}
	if got := s.Percentile(0.99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("fig-x", "framework", "mean(ms)")
	tbl.AddRow("centralized", 2.9)
	tbl.AddRow("cicero", 8.312)
	tbl.AddRow("latency", 1500*time.Microsecond)
	var b strings.Builder
	tbl.Render(&b)
	out := b.String()
	for _, want := range []string{"== fig-x ==", "framework", "centralized", "8.312", "1.500ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	ts.Add(time.Second, 42)
	ts.Add(2*time.Second, 43)
	if len(ts.Points) != 2 || ts.Points[1].V != 43 {
		t.Fatalf("points = %+v", ts.Points)
	}
}

func TestSummaryFormat(t *testing.T) {
	var s Samples
	s.Add(1)
	s.Add(2)
	got := s.Summary()
	if !strings.Contains(got, "n=2") || !strings.Contains(got, "mean=1.50") {
		t.Errorf("Summary = %q", got)
	}
}
