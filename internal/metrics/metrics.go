// Package metrics collects experiment measurements and renders them as
// the CDFs, series, and tables the paper's figures report.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Samples is an accumulating set of scalar measurements.
type Samples struct {
	values []float64
	sorted bool
}

// Add appends a measurement.
func (s *Samples) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddDuration appends a duration in milliseconds.
func (s *Samples) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// Len returns the number of samples.
func (s *Samples) Len() int { return len(s.values) }

// ensureSorted sorts lazily.
func (s *Samples) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Mean returns the arithmetic mean (0 for empty).
func (s *Samples) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Percentile returns the p-quantile (p in [0, 1]) by nearest-rank.
func (s *Samples) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 1 {
		return s.values[len(s.values)-1]
	}
	rank := int(math.Ceil(p*float64(len(s.values)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.values[rank]
}

// Min returns the smallest sample.
func (s *Samples) Min() float64 { return s.Percentile(0) }

// Max returns the largest sample.
func (s *Samples) Max() float64 { return s.Percentile(1) }

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability
}

// CDF returns the empirical CDF evaluated at n evenly spaced probability
// levels (like the paper's CDF plots).
func (s *Samples) CDF(n int) []CDFPoint {
	if len(s.values) == 0 || n <= 0 {
		return nil
	}
	s.ensureSorted()
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		p := float64(i) / float64(n)
		out = append(out, CDFPoint{X: s.Percentile(p), P: p})
	}
	return out
}

// Summary renders mean/percentiles compactly.
func (s *Samples) Summary() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.Len(), s.Mean(), s.Percentile(0.5), s.Percentile(0.9), s.Percentile(0.99), s.Max())
}

// Table renders aligned experiment output: a header row plus data rows.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fms", float64(v)/float64(time.Millisecond))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// pad right-pads s to width.
func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// TimeSeries accumulates (t, value) points, e.g. CPU utilization over a
// workload's duration (Fig. 11d).
type TimeSeries struct {
	Points []TimePoint
}

// TimePoint is one sample of a time series.
type TimePoint struct {
	T time.Duration
	V float64
}

// Add appends a point.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	ts.Points = append(ts.Points, TimePoint{T: t, V: v})
}
