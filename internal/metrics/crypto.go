package metrics

import "sync/atomic"

// CryptoCounters tracks process-wide totals of expensive cryptographic
// operations and the effectiveness of the crypto fast paths (pairing
// precomputation, product-of-pairings verification, batched share checks,
// and verification/Lagrange caching). Counters are atomic because the
// per-share verification worker pool updates them concurrently.
//
// They meter real work only: simulated virtual time is charged separately
// by the protocol cost model (internal/protocol.CostModel) and is never
// derived from these counts, so enabling or disabling any fast path
// cannot perturb experiment output.
type CryptoCounters struct {
	// Pairings counts full pairing evaluations (Miller loop plus final
	// exponentiation) with no precomputation.
	Pairings atomic.Uint64
	// PreparedPairings counts pairings replayed from cached Miller lines.
	PreparedPairings atomic.Uint64
	// PairingProducts counts shared-loop product-of-pairings evaluations
	// (each replaces two or more full pairings).
	PairingProducts atomic.Uint64
	// PointPrepares counts Miller-line precomputations (paid once per
	// long-lived verification key).
	PointPrepares atomic.Uint64
	// ShareVerifies counts per-share pairing checks (the culprit
	// identification fallback).
	ShareVerifies atomic.Uint64
	// BatchVerifies counts random-linear-combination share batches (one
	// pairing product regardless of batch size).
	BatchVerifies atomic.Uint64
	// VerifyCacheHits/Misses meter the per-node LRU of verified
	// (message digest, signature) pairs.
	VerifyCacheHits   atomic.Uint64
	VerifyCacheMisses atomic.Uint64
	// LagrangeCacheHits/Misses meter memoized Lagrange coefficient sets
	// per quorum index-set.
	LagrangeCacheHits   atomic.Uint64
	LagrangeCacheMisses atomic.Uint64
	// SignatureBytes accumulates the serialized size of every signature
	// and signature share produced, so benchmarks can report signature
	// bytes per update (batching amortizes one signature across a batch).
	SignatureBytes atomic.Uint64
}

// Crypto is the process-wide crypto counter set.
var Crypto CryptoCounters

// Snapshot returns the current counter values by name.
func (c *CryptoCounters) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"pairings":              c.Pairings.Load(),
		"prepared_pairings":     c.PreparedPairings.Load(),
		"pairing_products":      c.PairingProducts.Load(),
		"point_prepares":        c.PointPrepares.Load(),
		"share_verifies":        c.ShareVerifies.Load(),
		"batch_verifies":        c.BatchVerifies.Load(),
		"verify_cache_hits":     c.VerifyCacheHits.Load(),
		"verify_cache_misses":   c.VerifyCacheMisses.Load(),
		"lagrange_cache_hits":   c.LagrangeCacheHits.Load(),
		"lagrange_cache_misses": c.LagrangeCacheMisses.Load(),
		"signature_bytes":       c.SignatureBytes.Load(),
	}
}

// Reset zeroes all counters (used by tests and experiment harnesses).
func (c *CryptoCounters) Reset() {
	c.Pairings.Store(0)
	c.PreparedPairings.Store(0)
	c.PairingProducts.Store(0)
	c.PointPrepares.Store(0)
	c.ShareVerifies.Store(0)
	c.BatchVerifies.Store(0)
	c.VerifyCacheHits.Store(0)
	c.VerifyCacheMisses.Store(0)
	c.LagrangeCacheHits.Store(0)
	c.LagrangeCacheMisses.Store(0)
	c.SignatureBytes.Store(0)
}
