package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// CounterSet is a named bag of counters for fault-injection accounting:
// how many messages a chaos campaign dropped, delayed, duplicated or
// corrupted, how many crashes and partitions it scheduled, and so on.
// It is not safe for concurrent use; campaign workers each own one and
// merge at the end.
type CounterSet struct {
	counts map[string]uint64
}

// Canonical counter names for transport-resilience accounting. Livenet
// backends count these internally (livenet.ResilienceStats); reports and
// chaos campaigns fold them into a CounterSet under these names so
// BENCH_live.json and campaign tables stay comparable across layers.
const (
	// CounterRetry: frame (re)transmission attempts beyond the first.
	CounterRetry = "retry"
	// CounterReconnect: successful redials after a connection went bad.
	CounterReconnect = "reconnect"
	// CounterBreakerTrip: per-peer circuit-breaker closed -> open events.
	CounterBreakerTrip = "breaker-trip"
	// CounterCrash: fault-plane node crashes.
	CounterCrash = "crash"
	// CounterRestart: fault-plane node restarts.
	CounterRestart = "restart"
	// CounterRecovery: protocol-level crash recoveries completed
	// (controller state transfer adopted, switch resync served).
	CounterRecovery = "recovery"
)

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{counts: make(map[string]uint64)}
}

// Add increments the named counter by n.
func (c *CounterSet) Add(name string, n uint64) {
	if c.counts == nil {
		c.counts = make(map[string]uint64)
	}
	c.counts[name] += n
}

// Get returns the named counter's value.
func (c *CounterSet) Get(name string) uint64 { return c.counts[name] }

// Merge adds every counter from other into c.
func (c *CounterSet) Merge(other *CounterSet) {
	if other == nil {
		return
	}
	for name, v := range other.counts {
		c.Add(name, v)
	}
}

// Names returns the counter names in sorted order (deterministic output).
func (c *CounterSet) Names() []string {
	names := make([]string, 0, len(c.counts))
	for name := range c.counts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Total sums all counters.
func (c *CounterSet) Total() uint64 {
	var t uint64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// Map returns a sorted-stable copy of the counters.
func (c *CounterSet) Map() map[string]uint64 {
	out := make(map[string]uint64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// Table renders the counters as a two-column metrics table.
func (c *CounterSet) Table(title string) *Table {
	t := NewTable(title, "counter", "count")
	for _, name := range c.Names() {
		t.AddRow(name, fmt.Sprintf("%d", c.counts[name]))
	}
	return t
}

// String renders "name=value" pairs in sorted order.
func (c *CounterSet) String() string {
	parts := make([]string, 0, len(c.counts))
	for _, name := range c.Names() {
		parts = append(parts, fmt.Sprintf("%s=%d", name, c.counts[name]))
	}
	return strings.Join(parts, " ")
}
