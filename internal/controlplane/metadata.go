// Metadata plane: controllers publish TUF-style signed policy metadata
// (internal/metarepo) through the same machinery that orders and signs
// network updates.
//
// Publication rides the atomic broadcast: PublishPolicy submits a
// policy-change event whose Info payload carries the policy bundle plus
// its issue time, so every controller delivers it at the same position
// in the total order and derives byte-identical targets and snapshot
// documents (canonical JSON). Each controller signs both with its
// Ed25519 role key and sends the signatures to the metadata leader
// (lowest member — the same deterministic leader that pushes configs).
// The leader assembles the envelopes with metarepo's collectors, mints
// the short-lived timestamp itself (the timestamp role has threshold 1:
// it is the high-frequency online role), adopts the set into its own
// trusted store, and multicasts it to peers and switches. Every
// receiver re-verifies through its own store — the leader cannot
// splice, roll back, or freeze anything, because a quorum of role
// signatures backs each document and the store enforces the bindings.
//
// Root rotation uses BLS shares instead of role signatures: the leader
// proposes the next root document (an unsigned MsgMeta), members
// validate it against their directory and answer with signature shares
// over the exact proposed bytes, and the ShareCollector verifies each
// share against the current Feldman commitments — which is what makes
// shares from a retired (pre-reshare) sharing worthless even though the
// group public key never changes. Membership changes trigger a rotation
// automatically so the delegated key set tracks the live control plane.
package controlplane

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"cicero/internal/fabric"
	"cicero/internal/metarepo"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/tcrypto/pki"
)

// metaPolicyPrefix tags broadcast events that carry a metadata policy
// publication: "metapolicy|<issued_ns>|<policy json>".
const metaPolicyPrefix = "metapolicy|"

// MetadataConfig enables the signed-metadata plane on a controller.
type MetadataConfig struct {
	// Genesis is the threshold-signed version-1 root (the root of trust;
	// required).
	Genesis protocol.MetaEnvelope
	// InitialSet optionally seeds the store with a pre-signed
	// targets/snapshot/timestamp triple (the deployment planner's
	// bootstrap set).
	InitialSet []protocol.MetaEnvelope
	// TTL bounds root/targets/snapshot validity (default 1h).
	TTL time.Duration
	// TimestampTTL bounds the freshness proof (default 2s) — the window
	// a freeze attack can go unnoticed.
	TimestampTTL time.Duration
	// RefreshInterval is the leader's timestamp refresh cadence
	// (default TimestampTTL/2).
	RefreshInterval time.Duration
	// RefreshHorizon bounds the refresh loop: > 0 stops refreshing past
	// that fabric time (so simulations quiesce), < 0 refreshes forever
	// (live deployments), 0 disables the periodic loop entirely.
	RefreshHorizon time.Duration
}

func (mc *MetadataConfig) ttlNS() int64 {
	if mc.TTL > 0 {
		return int64(mc.TTL)
	}
	return int64(time.Hour)
}

func (mc *MetadataConfig) tsTTLNS() int64 {
	if mc.TimestampTTL > 0 {
		return int64(mc.TimestampTTL)
	}
	return int64(2 * time.Second)
}

func (mc *MetadataConfig) refreshEvery() time.Duration {
	if mc.RefreshInterval > 0 {
		return mc.RefreshInterval
	}
	return time.Duration(mc.tsTTLNS() / 2)
}

// metaState is the controller's metadata-plane state.
type metaState struct {
	store *metarepo.Store
	// version is the last derived targets/snapshot version. It advances
	// with each delivered policy publication, so every controller that
	// follows the total order assigns identical versions.
	version uint64
	// pubSeq numbers this controller's own publications (event ids).
	pubSeq uint64
	// Leader-side assembly state.
	shareCol *metarepo.ShareCollector
	sigCols  map[string]*metarepo.SigCollector
	sets     map[uint64]map[string]protocol.MetaEnvelope
}

// initMetadata builds the trusted store and seeds it from the genesis
// root (called from New; metadata requires the full protocol's key
// material).
func (c *Controller) initMetadata() error {
	mc := c.cfg.Metadata
	if mc == nil || c.cfg.Protocol != ProtoCicero {
		return nil
	}
	store := metarepo.NewStore(c.cfg.Scheme, c.cfg.GroupKey.PK,
		func() int64 { return int64(c.cfg.Net.Now()) })
	if err := store.Apply(mc.Genesis); err != nil {
		return fmt.Errorf("controlplane: %q: metadata genesis: %w", c.cfg.ID, err)
	}
	if len(mc.InitialSet) > 0 {
		if err := store.ApplySet(mc.InitialSet); err != nil {
			return fmt.Errorf("controlplane: %q: metadata initial set: %w", c.cfg.ID, err)
		}
	}
	c.meta = &metaState{
		store:   store,
		sigCols: make(map[string]*metarepo.SigCollector),
		sets:    make(map[uint64]map[string]protocol.MetaEnvelope),
	}
	if tg := store.PolicyTargets(); tg != nil {
		c.meta.version = tg.Version
	}
	if mc.RefreshHorizon != 0 {
		c.scheduleMetaRefresh()
	}
	return nil
}

// MetaStore exposes the controller's trusted-metadata store (nil when
// the metadata plane is disabled).
func (c *Controller) MetaStore() *metarepo.Store {
	if c.meta == nil {
		return nil
	}
	return c.meta.store
}

// metaLeader is the deterministic metadata leader: the lowest member,
// the same leader that combines config pushes.
func (c *Controller) metaLeader() pki.Identity {
	if len(c.members) == 0 {
		return c.cfg.ID
	}
	return c.members[0]
}

// PublishPolicy submits a policy bundle to the atomic broadcast. On
// delivery every controller derives and role-signs the same metadata
// set; the leader assembles and distributes it.
func (c *Controller) PublishPolicy(p metarepo.Policy) {
	if c.meta == nil || c.stopped {
		return
	}
	c.meta.pubSeq++
	info := metaPolicyPrefix + strconv.FormatInt(int64(c.cfg.Net.Now()), 10) +
		"|" + string(metarepo.Encode(p))
	ev := protocol.Event{
		ID:   openflow.MsgID{Origin: string(c.cfg.ID) + "/meta", Seq: c.meta.pubSeq},
		Kind: protocol.EventPolicyChange,
		Info: info,
	}
	c.seenEvents[ev.ID.String()] = true
	c.EventsReceived++
	c.submitItem(protocol.BroadcastItem{Event: &ev, Phase: c.phase})
}

// onMetaPolicy consumes a delivered policy publication: derive the
// deterministic targets/snapshot pair and send role signatures to the
// leader.
func (c *Controller) onMetaPolicy(ev protocol.Event) {
	if c.meta == nil {
		return
	}
	rest := strings.TrimPrefix(ev.Info, metaPolicyPrefix)
	bar := strings.IndexByte(rest, '|')
	if bar < 0 {
		return
	}
	issuedNS, err := strconv.ParseInt(rest[:bar], 10, 64)
	if err != nil {
		return
	}
	var policy metarepo.Policy
	if json.Unmarshal([]byte(rest[bar+1:]), &policy) != nil {
		return
	}
	c.meta.version++
	mc := c.cfg.Metadata
	tg, sn, _ := metarepo.BuildSet(policy, c.meta.version, issuedNS, mc.ttlNS(), mc.tsTTLNS())
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), 2*c.cfg.Cost.Ed25519Sign)
	c.sendMetaSig(protocol.MetaRoleTargets, tg.Version, metarepo.Encode(tg))
	c.sendMetaSig(protocol.MetaRoleSnapshot, sn.Version, metarepo.Encode(sn))
}

// sendMetaSig role-signs one derived document and routes the signature
// to the metadata leader.
func (c *Controller) sendMetaSig(role string, version uint64, signed []byte) {
	sig := metarepo.SignRole(c.cfg.Keys, role, signed)
	m := protocol.MsgMetaSig{
		Role: role, Version: version, Digest: metarepo.Digest(signed),
		Signed: signed, KeyID: sig.KeyID, Sig: sig.Sig,
	}
	if leader := c.metaLeader(); leader != c.cfg.ID {
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(leader), m, len(signed)+160)
		return
	}
	c.handleMetaSig(m)
}

// handleMetaSig collects role signatures at the leader; when both the
// targets and snapshot envelopes for a version complete, the leader
// finishes the set.
func (c *Controller) handleMetaSig(m protocol.MsgMetaSig) {
	if c.meta == nil || c.metaLeader() != c.cfg.ID {
		return
	}
	// Signatures for a version the store already holds are stragglers
	// from an assembled (or superseded) set; recreating a collector for
	// them would re-finish the set.
	if tg := c.meta.store.PolicyTargets(); tg != nil && m.Version <= tg.Version {
		return
	}
	root := c.meta.store.Root()
	if root == nil {
		return
	}
	d, ok := root.Roles[m.Role]
	if !ok {
		return
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.Ed25519Verify+c.cfg.Cost.MsgProcess)
	key := fmt.Sprintf("%s|%d", m.Role, m.Version)
	col, ok := c.meta.sigCols[key]
	if !ok {
		col = metarepo.NewSigCollector(m.Role, m.Version, m.Signed, d)
		c.meta.sigCols[key] = col
	}
	env, done, err := col.Add(m)
	if err != nil {
		c.MetaSigRejects++
		return
	}
	if !done {
		return
	}
	set, ok := c.meta.sets[m.Version]
	if !ok {
		set = make(map[string]protocol.MetaEnvelope)
		c.meta.sets[m.Version] = set
	}
	set[m.Role] = env
	tgEnv, okT := set[protocol.MetaRoleTargets]
	snEnv, okS := set[protocol.MetaRoleSnapshot]
	if okT && okS {
		c.finishMetaSet(m.Version, tgEnv, snEnv)
	}
}

// finishMetaSet mints the freshness proof over a completed
// targets/snapshot pair, adopts the triple locally, and multicasts it.
// A set superseded while its signatures were in flight fails local
// adoption (rollback) and is dropped — peers already hold something
// newer.
func (c *Controller) finishMetaSet(version uint64, tgEnv, snEnv protocol.MetaEnvelope) {
	delete(c.meta.sets, version)
	delete(c.meta.sigCols, fmt.Sprintf("%s|%d", protocol.MetaRoleTargets, version))
	delete(c.meta.sigCols, fmt.Sprintf("%s|%d", protocol.MetaRoleSnapshot, version))
	var snDoc metarepo.Snapshot
	if json.Unmarshal(snEnv.Signed, &snDoc) != nil {
		return
	}
	tsEnv, ok := c.mintTimestamp(snDoc.Version, metarepo.Digest(snEnv.Signed))
	if !ok {
		return
	}
	envs := []protocol.MetaEnvelope{tsEnv, snEnv, tgEnv}
	if err := c.meta.store.ApplySet(envs); err != nil {
		return
	}
	c.MetaPublished++
	c.multicastMeta(protocol.MsgMetaSet{Envs: envs})
}

// mintTimestamp builds and signs the next freshness proof binding the
// given snapshot (leader only; the timestamp role has threshold 1).
func (c *Controller) mintTimestamp(snVersion uint64, snDigest []byte) (protocol.MetaEnvelope, bool) {
	nowNS := int64(c.cfg.Net.Now())
	ver := uint64(1)
	if cur := c.meta.store.TimestampDoc(); cur != nil {
		ver = cur.Version + 1
	}
	ts := metarepo.Timestamp{
		Version: ver, IssuedNS: nowNS, ExpiresNS: nowNS + c.cfg.Metadata.tsTTLNS(),
		SnapshotVersion: snVersion, SnapshotDigest: snDigest,
	}
	signed := metarepo.Encode(ts)
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.Ed25519Sign)
	env := protocol.MetaEnvelope{
		Role:   protocol.MetaRoleTimestamp,
		Signed: signed,
		Sigs:   []protocol.MetaSig{metarepo.SignRole(c.cfg.Keys, protocol.MetaRoleTimestamp, signed)},
	}
	return env, true
}

// multicastMeta distributes metadata to the other members and this
// domain's switches.
func (c *Controller) multicastMeta(msg fabric.Message) {
	size := 512
	switch m := msg.(type) {
	case protocol.MsgMetaSet:
		size = 0
		for _, env := range m.Envs {
			size += len(env.Signed) + 128*len(env.Sigs)
		}
	case protocol.MsgMeta:
		size = len(m.Env.Signed) + 128*len(m.Env.Sigs)
	}
	for _, m := range c.members {
		if m == c.cfg.ID {
			continue
		}
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(m), msg, size)
	}
	for _, sw := range c.cfg.Switches {
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(sw), msg, size)
	}
}

// scheduleMetaRefresh arms the leader's periodic timestamp refresh.
// Every member runs the timer (leadership can move with membership),
// but only the current leader mints.
func (c *Controller) scheduleMetaRefresh() {
	mc := c.cfg.Metadata
	c.cfg.Net.After(fabric.NodeID(c.cfg.ID), mc.refreshEvery(), func() {
		if c.stopped || c.meta == nil {
			return
		}
		if mc.RefreshHorizon > 0 && c.cfg.Net.Now() > mc.RefreshHorizon {
			return
		}
		if c.metaLeader() == c.cfg.ID {
			c.RefreshMetaTimestamp()
		}
		c.scheduleMetaRefresh()
	})
}

// RefreshMetaTimestamp mints and distributes the next freshness proof
// over the current snapshot (leader path; exported so drivers and tests
// can force a refresh).
func (c *Controller) RefreshMetaTimestamp() {
	if c.meta == nil || c.stopped || c.metaLeader() != c.cfg.ID {
		return
	}
	cur := c.meta.store.TimestampDoc()
	if cur == nil {
		return
	}
	env, ok := c.mintTimestamp(cur.SnapshotVersion, cur.SnapshotDigest)
	if !ok {
		return
	}
	if err := c.meta.store.Apply(env); err != nil {
		return
	}
	c.MetaRefreshes++
	c.multicastMeta(protocol.MsgMeta{Env: env})
}

// RotateRoot proposes the next root document, delegating to the current
// members minus any excluded identities. Leader only; members answer
// with BLS shares over the proposed bytes and the leader distributes
// the threshold-signed result. Excluded identities' role keys are
// retired by every store the new root reaches.
func (c *Controller) RotateRoot(exclude ...pki.Identity) {
	if c.meta == nil || c.stopped || c.metaLeader() != c.cfg.ID {
		return
	}
	cur := c.meta.store.Root()
	if cur == nil {
		return
	}
	drop := make(map[pki.Identity]bool, len(exclude))
	for _, id := range exclude {
		drop[id] = true
	}
	var keys []metarepo.RoleKey
	for _, m := range c.members {
		if drop[m] {
			continue
		}
		pub, ok := c.cfg.Directory.Lookup(m)
		if !ok {
			continue
		}
		keys = append(keys, metarepo.RoleKey{KeyID: string(m), Pub: append([]byte(nil), pub...)})
	}
	if len(keys) == 0 {
		return
	}
	root := metarepo.RootAt(cur.Version+1, c.Quorum(), keys,
		int64(c.cfg.Net.Now()), c.cfg.Metadata.ttlNS())
	signed := metarepo.Encode(root)
	c.meta.shareCol = metarepo.NewShareCollector(c.cfg.Scheme, c.cfg.GroupKey, root.Version, signed)
	// Propose to peers, then count our own share.
	c.multicastRootProposal(signed)
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.BLSSignShare)
	sh := metarepo.SignRootShare(c.cfg.Scheme, c.cfg.Share, signed)
	c.handleMetaShare(protocol.MsgMetaShare{
		Version: root.Version, Signed: signed,
		ShareIndex: sh.Index, Share: c.cfg.Scheme.Params.PointBytes(sh.Point),
	})
}

// multicastRootProposal sends the unsigned next-root document to every
// other member for share signing.
func (c *Controller) multicastRootProposal(signed []byte) {
	prop := protocol.MsgMeta{Env: protocol.MetaEnvelope{Role: protocol.MetaRoleRoot, Signed: signed}}
	for _, m := range c.members {
		if m == c.cfg.ID {
			continue
		}
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(m), prop, len(signed)+96)
	}
}

// handleMetaRootProposal validates a leader's next-root proposal and
// answers with a BLS share over the exact proposed bytes. Members only
// endorse a monotonic successor whose delegated keys all belong to
// directory-verified identities — a Byzantine leader cannot smuggle a
// foreign key into the delegation.
func (c *Controller) handleMetaRootProposal(env protocol.MetaEnvelope) {
	// A retired member holds no share (removal installs an empty one) and
	// must not endorse rotations it is no longer part of.
	if c.meta == nil || c.cfg.Share.Scalar == nil {
		return
	}
	var doc metarepo.Root
	if json.Unmarshal(env.Signed, &doc) != nil {
		return
	}
	cur := c.meta.store.Root()
	if cur == nil || doc.Version != cur.Version+1 {
		return
	}
	for _, d := range doc.Roles {
		if d.Threshold < 1 {
			return
		}
		for _, k := range d.Keys {
			pub, ok := c.cfg.Directory.Lookup(pki.Identity(k.KeyID))
			if !ok || !bytesEqual(pub, k.Pub) {
				return
			}
		}
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.BLSSignShare)
	sh := metarepo.SignRootShare(c.cfg.Scheme, c.cfg.Share, env.Signed)
	m := protocol.MsgMetaShare{
		Version: doc.Version, Signed: env.Signed,
		ShareIndex: sh.Index, Share: c.cfg.Scheme.Params.PointBytes(sh.Point),
	}
	if leader := c.metaLeader(); leader != c.cfg.ID {
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(leader), m, len(env.Signed)+128)
		return
	}
	c.handleMetaShare(m)
}

// handleMetaShare collects root shares at the leader. Shares that fail
// against the current commitments — garbage or retired pre-reshare
// shares — are counted and discarded.
func (c *Controller) handleMetaShare(m protocol.MsgMetaShare) {
	if c.meta == nil || c.meta.shareCol == nil {
		return
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.BLSVerifyShare+c.cfg.Cost.MsgProcess)
	col := c.meta.shareCol
	before := col.StaleRejected
	env, done, _ := col.Add(m)
	c.MetaStaleShares += uint64(col.StaleRejected - before)
	if !done {
		return
	}
	c.meta.shareCol = nil
	if err := c.meta.store.Apply(env); err != nil {
		return
	}
	c.multicastMeta(protocol.MsgMeta{Env: env})
}

// handleMeta consumes a pushed metadata envelope: an unsigned root is a
// rotation proposal; everything else goes through the trusted store.
func (c *Controller) handleMeta(m protocol.MsgMeta) {
	if c.meta == nil {
		return
	}
	if m.Env.Role == protocol.MetaRoleRoot && len(m.Env.Sigs) == 0 {
		c.handleMetaRootProposal(m.Env)
		return
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.Ed25519Verify+c.cfg.Cost.MsgProcess)
	_ = c.meta.store.Apply(m.Env)
}

// handleMetaSet adopts a pushed metadata set through the trusted store.
func (c *Controller) handleMetaSet(m protocol.MsgMetaSet) {
	if c.meta == nil {
		return
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID),
		time.Duration(len(m.Envs))*(c.cfg.Cost.Ed25519Verify+c.cfg.Cost.MsgProcess))
	if err := c.meta.store.ApplySet(m.Envs); err != nil {
		return
	}
	// Keep the derived-version counter in step when this controller
	// learns of sets it missed (e.g. after recovery).
	if tg := c.meta.store.PolicyTargets(); tg != nil && tg.Version > c.meta.version {
		c.meta.version = tg.Version
	}
}

// handleMetaRequest serves the full verified metadata set to a
// restarted peer or switch.
func (c *Controller) handleMetaRequest(m protocol.MsgMetaRequest) {
	if c.meta == nil || m.From == "" {
		return
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.MsgProcess)
	envs := c.meta.store.CurrentSet()
	if len(envs) == 0 {
		return
	}
	size := 0
	for _, env := range envs {
		size += len(env.Signed) + 128*len(env.Sigs)
	}
	c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(m.From), protocol.MsgMetaSet{Envs: envs}, size)
}

// requestMetaCatchup asks every peer for its current verified set
// (store monotonicity discards stale answers). Used when recovering.
func (c *Controller) requestMetaCatchup() {
	if c.meta == nil {
		return
	}
	req := protocol.MsgMetaRequest{From: string(c.cfg.ID)}
	for _, m := range c.members {
		if m == c.cfg.ID {
			continue
		}
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(m), req, 64)
	}
}

// rotateRootAfterChange re-delegates the online roles to the
// post-change membership (completeChange calls it after the reshare
// installs fresh shares; leader only). The departing members' role keys
// retire with the new root, and their old BLS shares already fail
// against the fresh commitments.
func (c *Controller) rotateRootAfterChange() {
	if c.meta == nil || c.metaLeader() != c.cfg.ID {
		return
	}
	c.RotateRoot()
	// Publish the post-change policy bundle so switches hold a signed,
	// versioned record of the new membership (their config gate checks
	// phase-matched pushes against it).
	members := make([]string, len(c.members))
	for i, m := range c.members {
		members[i] = string(m)
	}
	c.PublishPolicy(metarepo.Policy{
		Phase:      c.phase,
		Members:    members,
		Quorum:     c.Quorum(),
		Aggregator: string(c.aggregatorID()),
	})
}

// bytesEqual avoids importing bytes for one comparison.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
