// Package controlplane implements the Cicero controller runtime (Fig. 7
// and Fig. 8 of the paper): event verification and deduplication, atomic
// broadcast of events, independent computation and threshold-share signing
// of network updates, dependency-driven parallel dispatch released by
// switch acknowledgements, the optional controller-aggregation mode, the
// failure detector, and control-plane membership changes with distributed
// resharing.
//
// The same runtime also hosts the two baselines the paper compares
// against: a centralized controller (no replication, no signatures) and a
// crash-tolerant replicated control plane (atomic broadcast, no quorum
// authentication).
package controlplane

import (
	"fmt"
	"strings"
	"time"

	"cicero/internal/audit"
	"cicero/internal/bft"
	"cicero/internal/fabric"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/routing"
	"cicero/internal/scheduler"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/pki"
)

// Protocol selects the control-plane protocol under evaluation.
type Protocol int

// Protocols. Start at 1 so the zero value is invalid.
const (
	// ProtoCentralized is the single-controller baseline.
	ProtoCentralized Protocol = iota + 1
	// ProtoCrash replicates with crash-tolerant atomic broadcast and no
	// update authentication.
	ProtoCrash
	// ProtoCicero is the full protocol: BFT atomic broadcast plus
	// threshold-signed updates.
	ProtoCicero
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtoCentralized:
		return "centralized"
	case ProtoCrash:
		return "crash-tolerant"
	case ProtoCicero:
		return "cicero"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Aggregation selects where signature aggregation happens (§4.2).
type Aggregation int

// Aggregation modes. Start at 1 so the zero value is invalid.
const (
	// AggSwitch has every switch collect and aggregate shares.
	AggSwitch Aggregation = iota + 1
	// AggController designates the lowest-identifier controller as
	// aggregator for both events and update signatures.
	AggController
)

// FailureDetectorConfig enables heartbeat-based failure detection.
type FailureDetectorConfig struct {
	// Interval between heartbeats.
	Interval time.Duration
	// Timeout after which a silent member is suspected.
	Timeout time.Duration
	// Horizon stops the detector (so simulations quiesce).
	Horizon time.Duration
}

// Config assembles a controller.
type Config struct {
	// ID is the controller's identity and fabric node id.
	ID pki.Identity
	// Domain is this controller's update domain index.
	Domain int
	// Members is the domain's initial control plane, in membership order
	// (identifier order; never reused).
	Members []pki.Identity

	// Net is the transport seam; the same controller runs on the
	// simulator or the live backends.
	Net       fabric.Fabric
	Cost      protocol.CostModel
	Keys      *pki.KeyPair
	Directory *pki.Directory

	Protocol    Protocol
	Aggregation Aggregation

	// Scheme, GroupKey and Share configure threshold signing (ProtoCicero).
	// A joining controller leaves Share zero and receives key material
	// through the membership protocol.
	Scheme   *bls.Scheme
	GroupKey *bls.GroupKey
	Share    bls.KeyShare

	// App plans updates; Sched orders them.
	App   routing.App
	Sched scheduler.Scheduler

	// DomainOf maps a switch id to its domain; nil means single-domain.
	DomainOf func(switchID string) int
	// PeerDomains lists known controllers of other domains for event
	// forwarding.
	PeerDomains map[int][]pki.Identity
	// Switches lists the data-plane switches of this domain (for config
	// pushes).
	Switches []string

	// CryptoReal executes real signatures; otherwise only simulated time
	// is charged.
	CryptoReal bool
	// Bootstrap marks the trusted bootstrap controller that may initiate
	// additions (§4.3).
	Bootstrap bool
	// ViewChangeTimeout bounds atomic-broadcast stalls.
	ViewChangeTimeout time.Duration
	// FailureDetector, when non-nil, runs heartbeats.
	FailureDetector *FailureDetectorConfig

	// BatchSize > 1 enables batched atomic-broadcast ordering and (with
	// ProtoCicero + AggSwitch) batch-amortized signing: one threshold
	// signature per batch Merkle root, inclusion proofs per update. <= 1
	// keeps the original per-update path bit-identically.
	BatchSize int
	// BatchDelay bounds how long a partial batch waits before it is
	// ordered anyway (zero: the bft default).
	BatchDelay time.Duration

	// Metadata, when non-nil, enables the TUF-style signed-metadata plane
	// (ProtoCicero only; see metadata.go and internal/metarepo).
	Metadata *MetadataConfig

	// CrashRecovery marks a controller that replaces a crashed instance.
	// It is born recovering: its amnesiac broadcast replica stays mute —
	// neither voting nor proposing — until peer state transfer rebuilds
	// its coordinates (an amnesiac that votes can contradict its pre-crash
	// votes and let conflicting quorums form). Set by the deployment
	// layer's restart path; call StartRecovery to begin the transfer.
	CrashRecovery bool
}

// CiceroQuorum returns the update quorum t = ⌊(n−1)/3⌋+1 (§3.2).
func CiceroQuorum(n int) int { return (n-1)/3 + 1 }

// aggCollect buffers shares at the aggregator.
type aggCollect struct {
	mods   []openflow.FlowMod
	phase  uint64
	shares map[uint32][]byte
	done   bool
}

// Controller is one control-plane member.
type Controller struct {
	cfg     Config
	members []pki.Identity
	phase   uint64

	replica   *bft.Replica
	engine    *scheduler.Engine
	updateMod map[string][]openflow.FlowMod // updateID|phase -> mods (for aggregation)

	seenEvents      map[string]bool // receipt-level dedup
	deliveredEvents map[string]bool // delivery-level dedup
	pendingSubmit   map[string][]byte

	// Aggregator state.
	aggPending map[string]*aggCollect

	// Config-push share collection (leader only).
	configShares map[uint64]map[uint32][]byte

	// dispatchLog records every update this controller signed, in release
	// order, so crash recovery can answer switch resyncs and retransmit
	// in-flight updates (see recovery.go).
	dispatchLog []dispatchRecord
	// aggSent stores the combined aggregate per update while this
	// controller is the aggregator, for recovery retransmission.
	aggSent map[string]protocol.MsgAggUpdate
	// batchOf maps an update id to its batch-amortized signing context
	// (Merkle proof + per-batch root share); retained after dispatch so
	// recovery retransmissions reuse the same proof and share.
	batchOf map[string]*batchRef
	// recovery tracks an in-flight crash recovery; recovered stays true
	// afterwards so retransmitted updates carry the Resend flag (switches
	// re-acknowledge those instead of silently dropping duplicates).
	recovery  *recoverySession
	recovered bool

	// Membership-change state (see membership.go).
	change      *changeState
	early       earlyReshare
	earlyConfig []protocol.MsgConfigShare

	// Metadata-plane state (see metadata.go); nil when disabled.
	meta *metaState

	// gapArmed is the frozen-horizon watchdog latch: set while a
	// gap-stall timer is pending (see gapstall logic in recovery.go).
	gapArmed bool

	// Failure detector state.
	lastSeen  map[pki.Identity]fabric.Time
	suspected map[pki.Identity]bool
	hbSeq     uint64

	// ledger is the §7 auditable decision chain: every delivered event
	// and signed update is appended, enabling cross-controller audits.
	ledger audit.Ledger

	// verifyCache memoizes verified aggregates so the leader's repeated
	// combines of the same update (per-port fan-out, retransmitted
	// shares) skip the pairing. Real CPU only; simulated time is charged
	// via the cost model.
	verifyCache *bls.VerifyCache

	centralSeq uint64
	stopped    bool

	// Counters for experiments.
	EventsReceived  uint64
	EventsDelivered uint64
	UpdatesSigned   uint64
	AcksReceived    uint64
	Reshares        uint64
	Recoveries      uint64
	BatchesSigned   uint64
	// Metadata-plane counters.
	MetaPublished   uint64 // sets assembled and distributed (leader)
	MetaRefreshes   uint64 // timestamp refreshes minted (leader)
	MetaStaleShares uint64 // root shares rejected by the collector
	MetaSigRejects  uint64 // role signatures rejected by the collector
	// GapRecoveries counts self-initiated recoveries triggered by the
	// frozen-horizon watchdog (committed slots piling above a gap).
	GapRecoveries uint64
}

// dispatchRecord is one signed update in the dispatch log.
type dispatchRecord struct {
	id    openflow.MsgID
	phase uint64
	mods  []openflow.FlowMod
}

var _ fabric.Handler = (*Controller)(nil)

// New creates a controller and registers it on the network.
func New(cfg Config) (*Controller, error) {
	if cfg.ID == "" || cfg.Net == nil || cfg.Keys == nil || cfg.Directory == nil {
		return nil, fmt.Errorf("controlplane: incomplete config for %q", cfg.ID)
	}
	if cfg.App == nil || cfg.Sched == nil {
		return nil, fmt.Errorf("controlplane: %q: app and scheduler are required", cfg.ID)
	}
	if cfg.Protocol == ProtoCicero {
		if len(cfg.Members) < 4 {
			return nil, fmt.Errorf("controlplane: cicero requires n >= 4 controllers, got %d", len(cfg.Members))
		}
		if cfg.Scheme == nil || cfg.GroupKey == nil {
			return nil, fmt.Errorf("controlplane: %q: cicero requires threshold key material", cfg.ID)
		}
	}
	c := &Controller{
		cfg:             cfg,
		members:         append([]pki.Identity(nil), cfg.Members...),
		seenEvents:      make(map[string]bool),
		deliveredEvents: make(map[string]bool),
		pendingSubmit:   make(map[string][]byte),
		aggPending:      make(map[string]*aggCollect),
		configShares:    make(map[uint64]map[uint32][]byte),
		updateMod:       make(map[string][]openflow.FlowMod),
		aggSent:         make(map[string]protocol.MsgAggUpdate),
		batchOf:         make(map[string]*batchRef),
		lastSeen:        make(map[pki.Identity]fabric.Time),
		suspected:       make(map[pki.Identity]bool),
	}
	if cfg.Scheme != nil {
		c.verifyCache = bls.NewVerifyCache(bls.DefaultVerifyCacheSize)
	}
	c.engine = scheduler.NewEngine(c.dispatchUpdate)
	if cfg.Protocol != ProtoCentralized {
		if err := c.rebuildReplica(); err != nil {
			return nil, err
		}
	}
	// Arm the recovery session before the handler is registered so not a
	// single message reaches the amnesiac replica.
	if cfg.CrashRecovery && cfg.Protocol != ProtoCentralized && len(c.members) >= 2 {
		c.recovery = &recoverySession{responses: make(map[string]protocol.MsgRecoverState)}
	}
	cfg.Net.Register(fabric.NodeID(cfg.ID), c)
	if cfg.FailureDetector != nil && cfg.Protocol == ProtoCicero {
		c.scheduleHeartbeat()
	}
	if err := c.initMetadata(); err != nil {
		return nil, err
	}
	return c, nil
}

// ID returns the controller's identity.
func (c *Controller) ID() pki.Identity { return c.cfg.ID }

// Members returns the current control-plane membership.
func (c *Controller) Members() []pki.Identity {
	return append([]pki.Identity(nil), c.members...)
}

// Phase returns the current membership phase.
func (c *Controller) Phase() uint64 { return c.phase }

// GroupKey returns the current threshold group key.
func (c *Controller) GroupKey() *bls.GroupKey { return c.cfg.GroupKey }

// Quorum returns the current update quorum.
func (c *Controller) Quorum() int {
	if c.cfg.Protocol != ProtoCicero {
		return 1
	}
	return CiceroQuorum(len(c.members))
}

// Stop models a crash from the inside (the simulator drops its traffic
// separately via Crash).
func (c *Controller) Stop() {
	c.stopped = true
	if c.replica != nil {
		c.replica.Stop()
	}
}

// memberSlot returns id's position in the membership list, or -1.
func (c *Controller) memberSlot(id pki.Identity) int {
	for i, m := range c.members {
		if m == id {
			return i
		}
	}
	return -1
}

// isAggregator reports whether this controller currently aggregates.
func (c *Controller) isAggregator() bool {
	return c.cfg.Aggregation == AggController && len(c.members) > 0 && c.members[0] == c.cfg.ID
}

// aggregatorID returns the current aggregator identity ("" when switches
// aggregate).
func (c *Controller) aggregatorID() pki.Identity {
	if c.cfg.Aggregation == AggController && len(c.members) > 0 {
		return c.members[0]
	}
	return ""
}

// rebuildReplica (re)creates the atomic-broadcast group for the current
// membership epoch. The previous epoch's replica is stopped so its
// retransmission timers die with it.
func (c *Controller) rebuildReplica() error {
	if c.replica != nil {
		c.replica.Stop()
	}
	slot := c.memberSlot(c.cfg.ID)
	if slot < 0 {
		c.replica = nil
		return nil // removed member: no longer participates
	}
	ids := make([]bft.ReplicaID, len(c.members))
	for i := range c.members {
		ids[i] = bft.ReplicaID(i + 1)
	}
	// The paper's crash-tolerant baseline orders through BFT-SMaRt's full
	// three-phase protocol (it merely skips update authentication), so
	// ProtoCrash uses Byzantine ordering whenever the group is large
	// enough and falls back to two-phase crash ordering below n=4.
	mode := bft.ModeByzantine
	if c.cfg.Protocol == ProtoCrash && len(c.members) < 4 {
		mode = bft.ModeCrash
	}
	epoch := c.phase
	bftCfg := bft.Config{
		ID:       bft.ReplicaID(slot + 1),
		Replicas: ids,
		Mode:     mode,
		// One transport adapter serves every backend: replica slots are
		// resolved against the live membership, and messages are tagged
		// with the epoch so stale-epoch traffic is filtered on receipt.
		Transport: &bft.FabricTransport{
			Fab:  c.cfg.Net,
			Self: fabric.NodeID(c.cfg.ID),
			Peer: func(to bft.ReplicaID) (fabric.NodeID, bool) {
				slot := int(to) - 1
				if slot < 0 || slot >= len(c.members) {
					return "", false
				}
				return fabric.NodeID(c.members[slot]), true
			},
			Wrap: func(msg bft.Message) fabric.Message {
				return protocol.MsgBFT{Phase: epoch, Inner: msg}
			},
		},
		Timer: func(d time.Duration, fn func()) {
			c.cfg.Net.After(fabric.NodeID(c.cfg.ID), d, fn)
		},
		Deliver:           func(seq uint64, payload []byte) { c.onDeliver(payload) },
		ViewChangeTimeout: c.cfg.ViewChangeTimeout,
		BatchSize:         c.cfg.BatchSize,
		BatchDelay:        c.cfg.BatchDelay,
	}
	if c.cfg.BatchSize > 1 {
		bftCfg.DeliverBatch = func(seq uint64, payloads [][]byte) { c.onDeliverBatch(payloads) }
	}
	replica, err := bft.NewReplica(bftCfg)
	if err != nil {
		return fmt.Errorf("controlplane: %q: %w", c.cfg.ID, err)
	}
	c.replica = replica
	return nil
}

// HandleMessage implements fabric.Handler.
func (c *Controller) HandleMessage(from fabric.NodeID, msg fabric.Message) {
	if c.stopped {
		return
	}
	switch m := msg.(type) {
	case protocol.MsgEvent:
		c.handleEventMsg(m)
	case protocol.MsgAck:
		c.handleAckMsg(m)
	case protocol.MsgBFT:
		c.handleBFT(from, m)
	case protocol.MsgUpdate:
		c.handleUpdateShare(m)
	case protocol.MsgConfigShare:
		c.handleConfigShare(m)
	case protocol.MsgHeartbeat:
		c.lastSeen[m.From] = c.cfg.Net.Now()
	case protocol.MsgReshareDeal:
		c.handleReshareDeal(m)
	case protocol.MsgReshareSub:
		c.handleReshareSub(m)
	case protocol.MsgStateTransfer:
		c.handleStateTransfer(m)
	case protocol.MsgRecoverRequest:
		c.handleRecoverRequest(m)
	case protocol.MsgRecoverState:
		c.handleRecoverState(m)
	case protocol.MsgResyncRequest:
		c.handleResyncRequest(m)
	case protocol.MsgMeta:
		c.handleMeta(m)
	case protocol.MsgMetaSet:
		c.handleMetaSet(m)
	case protocol.MsgMetaRequest:
		c.handleMetaRequest(m)
	case protocol.MsgMetaShare:
		c.handleMetaShare(m)
	case protocol.MsgMetaSig:
		c.handleMetaSig(m)
	}
}

// handleBFT feeds an atomic-broadcast message into the current epoch's
// replica; messages from future epochs are buffered until the local
// membership change completes.
func (c *Controller) handleBFT(from fabric.NodeID, m protocol.MsgBFT) {
	if c.replica == nil {
		return
	}
	// A recovering replica lost its agreement state with the crash; until
	// state transfer restores its coordinates it must not vote, propose,
	// or join view changes — an amnesiac participant can contradict its
	// pre-crash votes and let a conflicting quorum re-assign a slot that
	// other replicas already delivered.
	if c.Recovering() {
		return
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.BFTCompute)
	switch {
	case m.Phase == c.phase:
		slot := c.memberSlot(pki.Identity(from))
		if slot < 0 {
			return
		}
		c.replica.Handle(bft.ReplicaID(slot+1), m.Inner.(bft.Message))
		c.checkGapStall()
	case m.Phase > c.phase && c.change != nil:
		c.change.futureBFT = append(c.change.futureBFT, bufferedBFT{from: from, msg: m})
	}
}

// handleEventMsg processes an event from a switch or a peer domain
// (Fig. 7a): verify the source, dedup, forward cross-domain, broadcast.
func (c *Controller) handleEventMsg(m protocol.MsgEvent) {
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.Ed25519Verify+c.cfg.Cost.MsgProcess)
	payload := m.Env.Payload
	if c.cfg.CryptoReal {
		opened, err := c.cfg.Directory.Open(m.Env)
		if err != nil {
			return // unverifiable source: ignore (Fig. 7a)
		}
		payload = opened
	}
	ev, err := protocol.DecodeEvent(payload)
	if err != nil {
		return
	}
	key := ev.ID.String()
	if c.seenEvents[key] {
		return // previously processed (Fig. 7a)
	}
	c.seenEvents[key] = true
	c.EventsReceived++

	// Inter-domain forwarding: only the deterministic leader forwards, to
	// avoid n duplicate cross-domain messages; remote domains dedup by
	// event id regardless.
	if !ev.Forwarded && c.cfg.DomainOf != nil && c.leaderForForwarding() {
		c.forwardIfCrossDomain(ev)
	}
	c.submitItem(protocol.BroadcastItem{Event: &ev, Phase: c.phase})
}

// leaderForForwarding reports whether this controller performs the
// cross-domain forward (aggregator if assigned, else lowest member).
func (c *Controller) leaderForForwarding() bool {
	if len(c.members) == 0 {
		return true
	}
	return c.members[0] == c.cfg.ID
}

// forwardIfCrossDomain relays the event to one controller of each other
// affected domain, tagged so it is not forwarded again (§4.1).
func (c *Controller) forwardIfCrossDomain(ev protocol.Event) {
	if ev.Kind != protocol.EventFlowRequest && ev.Kind != protocol.EventFlowTeardown {
		return
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.RouteCompute)
	mods, err := c.cfg.App.PlanFlow(ev)
	if err != nil {
		return
	}
	domains := make(map[int]bool)
	for _, mod := range mods {
		domains[c.cfg.DomainOf(mod.Switch)] = true
	}
	fwd := ev
	fwd.Forwarded = true
	payload := fwd.Encode()
	var env pki.Envelope
	if c.cfg.CryptoReal {
		c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.Ed25519Sign)
		env = c.cfg.Keys.Seal(payload)
	} else {
		env = pki.Envelope{From: c.cfg.ID, Payload: payload}
	}
	for dom := range domains {
		if dom == c.cfg.Domain {
			continue
		}
		peers := c.cfg.PeerDomains[dom]
		if len(peers) == 0 {
			continue
		}
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(peers[0]),
			protocol.MsgEvent{Env: env}, len(payload)+96)
	}
}

// submitItem hands an item to the atomic broadcast (or delivers it
// directly in centralized mode).
func (c *Controller) submitItem(item protocol.BroadcastItem) {
	payload := item.Encode()
	if c.cfg.Protocol == ProtoCentralized {
		c.centralSeq++
		c.onDeliver(payload)
		return
	}
	if c.replica == nil {
		return
	}
	// While recovering, the replica is mute: hold submissions until state
	// transfer completes, then replay them through the rebuilt replica.
	if c.Recovering() {
		c.recovery.held = append(c.recovery.held, payload)
		return
	}
	c.pendingSubmit[string(payload)] = payload
	c.replica.Submit(payload)
}

// onDeliver consumes a totally-ordered broadcast item (Fig. 7b).
func (c *Controller) onDeliver(payload []byte) {
	if c.stopped {
		return
	}
	delete(c.pendingSubmit, string(payload))
	item, err := protocol.DecodeBroadcastItem(payload)
	if err != nil {
		return
	}
	if item.Membership != nil {
		c.onMembershipDelivered(*item.Membership)
		return
	}
	if item.Event == nil {
		return
	}
	ev := *item.Event
	key := ev.ID.String()
	if c.deliveredEvents[key] {
		return
	}
	// Events arriving during a membership change are queued and re-
	// broadcast in the new phase (§4.3); they are NOT marked delivered.
	if c.change != nil {
		c.change.queued = append(c.change.queued, ev)
		return
	}
	c.deliveredEvents[key] = true
	c.EventsDelivered++
	c.ledger.Append(audit.KindEvent, key, ev.Encode())
	c.processEvent(ev)
}

// processEvent computes, schedules, signs and dispatches this domain's
// updates for an event.
func (c *Controller) processEvent(ev protocol.Event) {
	plan, ok := c.planEvent(ev)
	if !ok {
		return
	}
	// Event replay is impossible here (deliveredEvents dedups upstream),
	// and the engine tolerates acks that raced ahead of this plan — a
	// switch can apply an update via the other controllers' quorum before
	// this controller delivers the event. A failure therefore indicates a
	// malformed plan from the scheduler; dropping it is the only safe move.
	if err := c.engine.Add(plan); err != nil {
		return
	}
}

// planEvent computes and schedules this domain's updates for an event,
// returning the plan without releasing it into the engine (the batched
// delivery path signs a whole batch of plans before any of them runs).
func (c *Controller) planEvent(ev protocol.Event) (scheduler.Plan, bool) {
	// Metadata publications ride policy-change events but never reach
	// the routing app: they fan out into the signed-metadata plane.
	if ev.Kind == protocol.EventPolicyChange && strings.HasPrefix(ev.Info, metaPolicyPrefix) {
		c.onMetaPolicy(ev)
		return nil, false
	}
	switch ev.Kind {
	case protocol.EventMembershipInfo:
		c.applyMembershipInfo(ev)
		return nil, false
	case protocol.EventFlowRequest, protocol.EventFlowTeardown,
		protocol.EventPolicyChange, protocol.EventLinkDown:
	default:
		return nil, false
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.RouteCompute)
	mods, err := c.cfg.App.PlanFlow(ev)
	if err != nil || len(mods) == 0 {
		return nil, false
	}
	// Keep only this domain's switches, preserving path order.
	local := mods[:0:0]
	for _, mod := range mods {
		if c.cfg.DomainOf == nil || c.cfg.DomainOf(mod.Switch) == c.cfg.Domain {
			local = append(local, mod)
		}
	}
	if len(local) == 0 {
		return nil, false
	}
	updates := make([]scheduler.Update, len(local))
	origin := fmt.Sprintf("%s/d%d", ev.ID, c.cfg.Domain)
	for i, mod := range local {
		updates[i] = scheduler.Update{
			ID:  openflow.MsgID{Origin: origin, Seq: uint64(i)},
			Mod: mod,
		}
	}
	return c.cfg.Sched.Schedule(updates), true
}

// dispatchUpdate signs and sends one ready update (the engine's release
// callback).
func (c *Controller) dispatchUpdate(su scheduler.ScheduledUpdate) {
	mods := []openflow.FlowMod{su.Mod}
	canonical := openflow.CanonicalUpdateBytes(su.ID, c.phase, mods)
	c.ledger.Append(audit.KindUpdate, su.ID.String(), canonical)
	c.UpdatesSigned++
	c.dispatchLog = append(c.dispatchLog, dispatchRecord{id: su.ID, phase: c.phase, mods: mods})
	// After a recovery, every dispatch is a potential retransmission of an
	// update the switch decided before the crash; Resend makes the switch
	// re-acknowledge so the rebuilt engine can release dependents.
	c.sendUpdateAuto(su.ID, c.phase, mods, c.recovered)
}

// sendUpdate share-signs one update and routes it to its switch (or to
// the aggregator). It is the transmission half of dispatchUpdate, reused
// by the recovery layer to retransmit logged updates with fresh shares.
func (c *Controller) sendUpdate(id openflow.MsgID, phase uint64, mods []openflow.FlowMod, resend bool) {
	msg := protocol.MsgUpdate{
		UpdateID: id,
		Mods:     mods,
		Phase:    phase,
		From:     c.cfg.ID,
		Resend:   resend,
	}
	if c.cfg.Protocol == ProtoCicero {
		// A retired member holds no share (removal installs an empty
		// one); nothing it could send would count toward a quorum.
		if c.cfg.Share.Scalar == nil {
			return
		}
		c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.BLSSignShare)
		msg.ShareIndex = c.cfg.Share.Index
		if c.cfg.CryptoReal {
			canonical := openflow.CanonicalUpdateBytes(id, phase, mods)
			share := c.cfg.Scheme.SignShare(c.cfg.Share, canonical)
			msg.Share = c.cfg.Scheme.Params.PointBytes(share.Point)
		}
	}
	size := 256 * len(mods)
	if agg := c.aggregatorID(); agg != "" && c.cfg.Protocol == ProtoCicero {
		if agg == c.cfg.ID {
			c.handleUpdateShare(msg) // self-delivery without network hop
			return
		}
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(agg), msg, size)
		return
	}
	if len(mods) == 0 {
		return
	}
	c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(mods[0].Switch), msg, size)
}

// handleUpdateShare collects controllers' shares when this controller is
// the aggregator (Fig. 7c), combining and relaying once a quorum arrives.
func (c *Controller) handleUpdateShare(m protocol.MsgUpdate) {
	if !c.isAggregator() || c.cfg.Protocol != ProtoCicero {
		return
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.MsgProcess)
	key := fmt.Sprintf("%s|%d", m.UpdateID, m.Phase)
	col, ok := c.aggPending[key]
	if !ok {
		col = &aggCollect{mods: m.Mods, phase: m.Phase, shares: make(map[uint32][]byte)}
		c.aggPending[key] = col
	}
	if col.done {
		// A Resend share for a completed update means a recovering peer
		// needs the ack again: rebroadcast the stored aggregate so the
		// switch re-acknowledges.
		if m.Resend {
			if out, ok := c.aggSent[key]; ok {
				out.Resend = true
				c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(out.Mods[0].Switch), out, 256*len(out.Mods))
			}
		}
		return
	}
	if m.ShareIndex == 0 {
		return
	}
	col.shares[m.ShareIndex] = m.Share
	quorum := c.Quorum()
	if len(col.shares) < quorum {
		return
	}
	col.done = true
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID),
		time.Duration(quorum)*c.cfg.Cost.BLSAggregatePerShare+c.cfg.Cost.AggregatorQueue)
	var sig []byte
	if c.cfg.CryptoReal {
		canonical := openflow.CanonicalUpdateBytes(m.UpdateID, m.Phase, col.mods)
		shares := make([]bls.SignatureShare, 0, len(col.shares))
		for idx, raw := range col.shares {
			pt, err := c.cfg.Scheme.Params.ParsePoint(raw)
			if err != nil {
				continue
			}
			shares = append(shares, bls.SignatureShare{Index: idx, Point: pt})
		}
		combined, err := c.cfg.Scheme.CombineVerifiedCached(c.verifyCache, c.cfg.GroupKey, canonical, shares)
		if err != nil {
			col.done = false // wait for more (honest) shares
			return
		}
		sig = c.cfg.Scheme.Params.PointBytes(combined.Point)
	}
	if len(col.mods) == 0 {
		return
	}
	out := protocol.MsgAggUpdate{UpdateID: m.UpdateID, Mods: col.mods, Phase: m.Phase, Signature: sig, Resend: m.Resend}
	c.aggSent[key] = out
	c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(col.mods[0].Switch), out, 256*len(col.mods))
}

// handleAckMsg verifies a switch acknowledgement and releases dependents
// (Fig. 7b's loop).
func (c *Controller) handleAckMsg(m protocol.MsgAck) {
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.Ed25519Verify+c.cfg.Cost.MsgProcess)
	payload := m.Env.Payload
	if c.cfg.CryptoReal {
		opened, err := c.cfg.Directory.Open(m.Env)
		if err != nil {
			return
		}
		payload = opened
	}
	ack, err := protocol.DecodeAck(payload)
	if err != nil || !ack.Applied {
		return
	}
	c.AcksReceived++
	// The batch signing context exists only for the initial dispatch;
	// every retransmission path resends through legacy per-update shares,
	// so an acked update's ref is dead weight on a long-running controller.
	delete(c.batchOf, ack.UpdateID.String())
	c.engine.Ack(ack.UpdateID)
}

// applyMembershipInfo updates the peer-domain controller view (§4.3 final
// step): the Info payload carries "domain|member1|member2|...".
func (c *Controller) applyMembershipInfo(ev protocol.Event) {
	var dom int
	var rest string
	if _, err := fmt.Sscanf(ev.Info, "%d|%s", &dom, &rest); err != nil {
		return
	}
	var members []pki.Identity
	for _, part := range splitNonEmpty(rest, '|') {
		members = append(members, pki.Identity(part))
	}
	if c.cfg.PeerDomains == nil {
		c.cfg.PeerDomains = make(map[int][]pki.Identity)
	}
	c.cfg.PeerDomains[dom] = members
}

// splitNonEmpty splits s on sep, dropping empty parts.
func splitNonEmpty(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == sep {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// PushConfig initiates a threshold-signed configuration push to this
// domain's switches for the current phase. Every member contributes a
// share; the lowest member combines and sends (bootstrap and after every
// membership change).
func (c *Controller) PushConfig() {
	if c.cfg.Protocol != ProtoCicero {
		// Baselines: the (single or unauthenticated) control plane just
		// tells switches its membership.
		if c.leaderForForwarding() {
			cfgMsg := protocol.MsgConfig{Phase: c.phase, Quorum: 1, Members: c.members}
			for _, sw := range c.cfg.Switches {
				c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(sw), cfgMsg, 256)
			}
		}
		return
	}
	canonical := protocol.ConfigBytes(c.phase, c.Quorum(), c.members, c.aggregatorID())
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.BLSSignShare)
	share := protocol.MsgConfigShare{
		Phase:      c.phase,
		Quorum:     c.Quorum(),
		Members:    c.members,
		Aggregator: c.aggregatorID(),
		ShareIndex: c.cfg.Share.Index,
	}
	if c.cfg.CryptoReal {
		sigShare := c.cfg.Scheme.SignShare(c.cfg.Share, canonical)
		share.Share = c.cfg.Scheme.Params.PointBytes(sigShare.Point)
	}
	leader := c.members[0]
	if leader == c.cfg.ID {
		c.handleConfigShare(share)
		return
	}
	c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(leader), share, 512)
}

// handleConfigShare collects config shares at the leader and pushes the
// combined configuration to switches once a quorum signs it. Shares from
// a phase this controller has not reached yet are buffered (peers may
// finish a reshare slightly earlier).
func (c *Controller) handleConfigShare(m protocol.MsgConfigShare) {
	if m.Phase > c.phase {
		c.earlyConfig = append(c.earlyConfig, m)
		return
	}
	if len(c.members) == 0 || c.members[0] != c.cfg.ID || m.Phase != c.phase {
		return
	}
	shares, ok := c.configShares[m.Phase]
	if !ok {
		shares = make(map[uint32][]byte)
		c.configShares[m.Phase] = shares
	}
	if _, done := shares[0]; done {
		return // sentinel: already pushed
	}
	shares[m.ShareIndex] = m.Share
	quorum := c.Quorum()
	if len(shares) < quorum {
		return
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID),
		time.Duration(quorum)*c.cfg.Cost.BLSAggregatePerShare)
	var sig []byte
	if c.cfg.CryptoReal {
		canonical := protocol.ConfigBytes(c.phase, quorum, c.members, c.aggregatorID())
		blsShares := make([]bls.SignatureShare, 0, len(shares))
		for idx, raw := range shares {
			if idx == 0 {
				continue
			}
			pt, err := c.cfg.Scheme.Params.ParsePoint(raw)
			if err != nil {
				continue
			}
			blsShares = append(blsShares, bls.SignatureShare{Index: idx, Point: pt})
		}
		combined, err := c.cfg.Scheme.CombineVerifiedCached(c.verifyCache, c.cfg.GroupKey, canonical, blsShares)
		if err != nil {
			return
		}
		sig = c.cfg.Scheme.Params.PointBytes(combined.Point)
	}
	shares[0] = nil // sentinel
	out := protocol.MsgConfig{
		Phase:      c.phase,
		Quorum:     quorum,
		Members:    c.members,
		Aggregator: c.aggregatorID(),
		GroupKey:   c.cfg.GroupKey,
		Signature:  sig,
	}
	for _, sw := range c.cfg.Switches {
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(sw), out, 512)
	}
}

// PeerView returns this controller's view of another domain's control
// plane (for event forwarding); membership notices update it.
func (c *Controller) PeerView(domain int) []pki.Identity {
	return append([]pki.Identity(nil), c.cfg.PeerDomains[domain]...)
}

// AuditRecords returns the controller's decision ledger for auditing
// (the §7 future-work mechanism; see internal/audit).
func (c *Controller) AuditRecords() []audit.Record {
	return c.ledger.Records()
}

// BroadcastCoords reports the atomic-broadcast replica's current view and
// delivery watermark (zeros for the centralized baseline). Operational
// introspection for drain loops and debugging.
func (c *Controller) BroadcastCoords() (view, lastDelivered uint64) {
	if c.replica == nil {
		return 0, 0
	}
	return c.replica.View(), c.replica.LastDelivered()
}

// InjectEvent lets the simulation driver present an administrator event
// (policy change, link failure) directly to this controller, as if
// received from a verified source.
func (c *Controller) InjectEvent(ev protocol.Event) {
	key := ev.ID.String()
	if c.seenEvents[key] {
		return
	}
	c.seenEvents[key] = true
	c.EventsReceived++
	if !ev.Forwarded && c.cfg.DomainOf != nil && c.leaderForForwarding() {
		c.forwardIfCrossDomain(ev)
	}
	c.submitItem(protocol.BroadcastItem{Event: &ev, Phase: c.phase})
}
