// Batch-amortized ordering and signing (the carrier-scale hot path).
//
// With Config.BatchSize > 1 the atomic broadcast delivers whole batches of
// events per agreement slot (internal/bft), and the threshold-crypto cost
// collapses from one signing ceremony per update to one per batch: the
// controller plans every event of a delivered batch, hashes the resulting
// updates' canonical bytes into a Merkle tree, signs only
// BatchBytes(phase, root), and dispatches each update with its inclusion
// proof (protocol.MsgBatchUpdate). Switches verify proofs with pure
// hashing and pay the pairing check once per batch root.
//
// The no-forged-rule guarantee is unchanged: the root binds every leaf's
// exact content and position, a quorum of t = ⌊(n−1)/3⌋+1 root shares still
// vouches for at least one honest controller, and a switch only acts on an
// update whose proof verifies against a quorum-signed root. The audit
// ledger keeps recording per-update canonical bytes, so batched and
// unbatched runs produce identical ledger content — the digest cross-check
// the scale benchmark enforces.
//
// Dispatch remains dependency-driven with no batch-completion barrier:
// plans enter the scheduler engine individually and each update leaves the
// moment its dependencies clear, carrying the already-computed proof.
package controlplane

import (
	"cicero/internal/audit"
	"cicero/internal/fabric"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/scheduler"
	"cicero/internal/tcrypto/merkle"
)

// batchRef is the batch-amortized signing context of one planned update:
// everything dispatch (and recovery retransmission) needs to send it as a
// MsgBatchUpdate. The share is computed once per batch and referenced by
// every update in it.
type batchRef struct {
	phase uint64
	root  []byte
	index int
	count int
	proof [][]byte
	share []byte
}

// batchingEnabled reports whether batch-amortized signing is active.
// Ordering-level batching only needs BatchSize; the Merkle/signature
// amortization additionally requires the full protocol with switch-side
// aggregation (the aggregator baseline keeps its own combining path).
func (c *Controller) batchingEnabled() bool {
	return c.cfg.BatchSize > 1 && c.cfg.Protocol == ProtoCicero && c.cfg.Aggregation == AggSwitch
}

// onDeliverBatch consumes one totally-ordered batch of broadcast items.
// Event bookkeeping (dedup, ledger append) is identical to onDeliver;
// planning and signing are deferred to deliverEventBatch so consecutive
// events share one Merkle tree. Membership changes flush the events
// accumulated so far first, preserving the delivered order's semantics.
func (c *Controller) onDeliverBatch(payloads [][]byte) {
	if c.stopped {
		return
	}
	var evs []protocol.Event
	flush := func() {
		if len(evs) > 0 {
			c.deliverEventBatch(evs)
			evs = nil
		}
	}
	for _, payload := range payloads {
		delete(c.pendingSubmit, string(payload))
		item, err := protocol.DecodeBroadcastItem(payload)
		if err != nil {
			continue
		}
		if item.Membership != nil {
			flush()
			c.onMembershipDelivered(*item.Membership)
			continue
		}
		if item.Event == nil {
			continue
		}
		ev := *item.Event
		key := ev.ID.String()
		if c.deliveredEvents[key] {
			continue
		}
		if c.change != nil {
			c.change.queued = append(c.change.queued, ev)
			continue
		}
		c.deliveredEvents[key] = true
		c.EventsDelivered++
		c.ledger.Append(audit.KindEvent, key, ev.Encode())
		evs = append(evs, ev)
	}
	flush()
}

// deliverEventBatch plans every event of a delivered batch, signs one
// Merkle root over all resulting updates, then releases the plans into the
// scheduler engine (updates dispatch individually as dependencies clear).
func (c *Controller) deliverEventBatch(evs []protocol.Event) {
	plans := make([]scheduler.Plan, 0, len(evs))
	for _, ev := range evs {
		if plan, ok := c.planEvent(ev); ok {
			plans = append(plans, plan)
		}
	}
	if c.batchingEnabled() {
		c.signUpdateBatch(plans)
	}
	for _, plan := range plans {
		// See processEvent: a rejected plan is malformed scheduler output
		// and dropping it is the only safe move.
		if err := c.engine.Add(plan); err != nil {
			continue
		}
	}
}

// signUpdateBatch builds the Merkle tree over the batch's updates (leaf
// order: delivery order of events, plan order within each event — identical
// on every correct controller), signs the root once, and records each
// update's inclusion proof for dispatch.
func (c *Controller) signUpdateBatch(plans []scheduler.Plan) {
	var leaves [][]byte
	for _, plan := range plans {
		for _, su := range plan {
			leaves = append(leaves, openflow.CanonicalUpdateBytes(su.ID, c.phase, []openflow.FlowMod{su.Mod}))
		}
	}
	if len(leaves) == 0 {
		return
	}
	tree := merkle.NewTree(leaves)
	root := tree.Root()
	// One signing ceremony for the whole batch — the amortization this
	// entire layer exists for.
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.BLSSignShare)
	var shareBytes []byte
	if c.cfg.CryptoReal && c.cfg.Share.Scalar != nil {
		share := c.cfg.Scheme.SignShare(c.cfg.Share, protocol.BatchBytes(c.phase, root[:]))
		shareBytes = c.cfg.Scheme.Params.PointBytes(share.Point)
	}
	idx := 0
	for _, plan := range plans {
		for _, su := range plan {
			c.batchOf[su.ID.String()] = &batchRef{
				phase: c.phase,
				root:  root[:],
				index: idx,
				count: len(leaves),
				proof: tree.Proof(idx),
				share: shareBytes,
			}
			idx++
		}
	}
	c.BatchesSigned++
}

// sendUpdateAuto routes one update through the batch-amortized path when a
// batch context exists for it (same phase), falling back to the legacy
// per-update share path otherwise — recovery replays and cross-phase
// retransmissions always have the legacy path to land on, and switches
// accept both concurrently.
func (c *Controller) sendUpdateAuto(id openflow.MsgID, phase uint64, mods []openflow.FlowMod, resend bool) {
	if ref, ok := c.batchOf[id.String()]; ok && ref.phase == phase {
		c.sendBatchUpdate(id, mods, ref, resend)
		return
	}
	c.sendUpdate(id, phase, mods, resend)
}

// sendBatchUpdate sends one update with its batch root, inclusion proof,
// the (per-batch) root signature share, and a per-update Ed25519 release
// attestation. The BLS share was computed once in signUpdateBatch; only
// the cheap release signature is per-dispatch — it is what lets the
// switch count this controller toward the update's release quorum by
// authenticated identity rather than by a self-declared share index.
func (c *Controller) sendBatchUpdate(id openflow.MsgID, mods []openflow.FlowMod, ref *batchRef, resend bool) {
	if len(mods) == 0 || c.cfg.Share.Scalar == nil {
		return // a retired member holds no share to contribute
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.Ed25519Sign)
	var releaseSig []byte
	if c.cfg.CryptoReal {
		releaseSig = c.cfg.Keys.Sign(protocol.BatchReleaseBytes(id, ref.phase, ref.root))
	}
	msg := protocol.MsgBatchUpdate{
		UpdateID:   id,
		Mods:       mods,
		Phase:      ref.phase,
		From:       c.cfg.ID,
		BatchRoot:  ref.root,
		LeafIndex:  ref.index,
		LeafCount:  ref.count,
		Proof:      ref.proof,
		ShareIndex: c.cfg.Share.Index,
		Share:      ref.share,
		ReleaseSig: releaseSig,
		Resend:     resend,
	}
	size := 256*len(mods) + merkle.HashSize*(len(ref.proof)+2) + 64
	c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(mods[0].Switch), msg, size)
}
