package controlplane

import (
	"crypto/rand"
	"fmt"
	"sort"

	"cicero/internal/fabric"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/dkg"
	"cicero/internal/tcrypto/pki"
)

// This file implements control-plane membership changes (Fig. 8 of the
// paper): additions initiated by the trusted bootstrap controller and
// removals proposed by any member (typically after failure detection).
// A change is agreed through the atomic broadcast, after which the
// distributed resharing re-deals key shares for the new quorum size while
// keeping the group public key fixed. Events delivered during the change
// are queued and re-broadcast in the new phase, so members never hold old
// and new shares concurrently.

// bufferedBFT is an atomic-broadcast message from the next epoch, held
// until the local membership change completes.
type bufferedBFT struct {
	from fabric.NodeID
	msg  protocol.MsgBFT
}

// changeState tracks one in-progress membership change.
type changeState struct {
	op         protocol.MembershipOp
	subject    pki.Identity
	newMembers []pki.Identity
	newPhase   uint64
	tNew       int

	dealerIDs  []pki.Identity
	dealerSet  []uint32 // dealer share indices in the old sharing
	receiver   *dkg.ReshareReceiver
	dealsGot   map[uint32]bool
	subsGot    map[uint32]bool
	myNewIndex uint32

	// pendingSubs holds sub-shares that overtook their dealer's deal on
	// the wire (per-message jitter reorders them); they replay once the
	// deal arrives.
	pendingSubs map[uint32][]protocol.MsgReshareSub

	queued    []protocol.Event
	futureBFT []bufferedBFT
}

// RequestAddController asks the control plane to admit a new member. Only
// the trusted bootstrap controller may initiate additions (§4.3); the new
// controller's identity keys must already be registered in the directory.
func (c *Controller) RequestAddController(id pki.Identity) error {
	if !c.cfg.Bootstrap {
		return fmt.Errorf("controlplane: %q is not the bootstrap controller", c.cfg.ID)
	}
	if c.memberSlot(id) >= 0 {
		return fmt.Errorf("controlplane: %q is already a member", id)
	}
	c.submitItem(protocol.BroadcastItem{
		Membership: &protocol.MembershipChange{Op: protocol.MemberAdd, Controller: id},
		Phase:      c.phase,
	})
	return nil
}

// RequestRemoveController proposes removing a member (failure detection or
// administrative action). Any member may propose.
func (c *Controller) RequestRemoveController(id pki.Identity) error {
	if c.memberSlot(id) < 0 {
		return fmt.Errorf("controlplane: %q is not a member", id)
	}
	c.submitItem(protocol.BroadcastItem{
		Membership: &protocol.MembershipChange{Op: protocol.MemberRemove, Controller: id},
		Phase:      c.phase,
	})
	return nil
}

// onMembershipDelivered begins a membership change once the atomic
// broadcast orders it (Fig. 8c). Changes are strictly one at a time.
func (c *Controller) onMembershipDelivered(mc protocol.MembershipChange) {
	if c.cfg.Protocol != ProtoCicero {
		return
	}
	if c.change != nil {
		return // lock-step: a change is already in progress
	}
	var newMembers []pki.Identity
	switch mc.Op {
	case protocol.MemberAdd:
		if c.memberSlot(mc.Controller) >= 0 {
			return
		}
		newMembers = append(append([]pki.Identity(nil), c.members...), mc.Controller)
	case protocol.MemberRemove:
		if c.memberSlot(mc.Controller) < 0 {
			return
		}
		for _, m := range c.members {
			if m != mc.Controller {
				newMembers = append(newMembers, m)
			}
		}
	default:
		return
	}
	if len(newMembers) < 4 {
		return // the paper requires n >= 4 at all times (§3.2)
	}
	tOld := CiceroQuorum(len(c.members))
	tNew := CiceroQuorum(len(newMembers))

	// Dealers: the first tOld old members that survive the change (for a
	// removal, the removed member cannot deal).
	var dealerIDs []pki.Identity
	var dealerSet []uint32
	for slot, m := range c.members {
		if mc.Op == protocol.MemberRemove && m == mc.Controller {
			continue
		}
		dealerIDs = append(dealerIDs, m)
		dealerSet = append(dealerSet, uint32(slot+1))
		if len(dealerIDs) == tOld {
			break
		}
	}
	st := &changeState{
		op:          mc.Op,
		subject:     mc.Controller,
		newMembers:  newMembers,
		newPhase:    c.phase + 1,
		tNew:        tNew,
		dealerIDs:   dealerIDs,
		dealerSet:   dealerSet,
		dealsGot:    make(map[uint32]bool),
		subsGot:     make(map[uint32]bool),
		pendingSubs: make(map[uint32][]protocol.MsgReshareSub),
	}
	c.change = st

	// Members of the new group receive shares.
	for i, m := range newMembers {
		if m == c.cfg.ID {
			st.myNewIndex = uint32(i + 1)
		}
	}
	if st.myNewIndex > 0 {
		recv, err := dkg.NewReshareReceiver(c.cfg.Scheme, c.cfg.GroupKey, st.myNewIndex, tNew, len(newMembers))
		if err == nil {
			st.receiver = recv
		}
	}

	// The bootstrap controller transfers state to a joining controller
	// (§4.3 step i/iv) before resharing reaches it.
	if mc.Op == protocol.MemberAdd && c.cfg.Bootstrap {
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(mc.Controller), protocol.MsgStateTransfer{
			Phase:       c.phase,
			NewPhase:    st.newPhase,
			Members:     c.Members(),
			NewMembers:  append([]pki.Identity(nil), newMembers...),
			GroupKey:    c.cfg.GroupKey,
			PeerDomains: c.cfg.PeerDomains,
		}, 4096)
	}

	// Removed member: it simply installs the new view and retires.
	if st.myNewIndex == 0 {
		c.completeChange(bls.KeyShare{}, c.cfg.GroupKey)
		return
	}

	// Dealers re-deal their Lagrange-weighted shares (§3.2 DKG).
	if c.isDealer(st) {
		c.dealReshare(st)
	}
	c.drainEarlyReshare()
}

// isDealer reports whether this controller deals in the current change.
func (c *Controller) isDealer(st *changeState) bool {
	for _, id := range st.dealerIDs {
		if id == c.cfg.ID {
			return true
		}
	}
	return false
}

// dealReshare produces and distributes this dealer's reshare contribution.
func (c *Controller) dealReshare(st *changeState) {
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.ReshareCompute)
	newIndices := make([]uint32, len(st.newMembers))
	for i := range st.newMembers {
		newIndices[i] = uint32(i + 1)
	}
	deal, subs, err := dkg.ReshareDealer(c.cfg.Scheme, rand.Reader, c.cfg.Share, st.dealerSet, st.tNew, newIndices)
	if err != nil {
		return
	}
	for i, m := range st.newMembers {
		dealMsg := protocol.MsgReshareDeal{Phase: st.newPhase, Deal: deal}
		subMsg := protocol.MsgReshareSub{Phase: st.newPhase, Sub: subs[i]}
		if m == c.cfg.ID {
			c.handleReshareDeal(dealMsg)
			c.handleReshareSub(subMsg)
			continue
		}
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(m), dealMsg, 2048)
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(m), subMsg, 256)
	}
}

// earlyReshare buffers reshare traffic that raced ahead of the local
// membership-change delivery (or of the joiner's state transfer).
type earlyReshare struct {
	deals []protocol.MsgReshareDeal
	subs  []protocol.MsgReshareSub
}

// handleReshareDeal validates and records a dealer's broadcast.
func (c *Controller) handleReshareDeal(m protocol.MsgReshareDeal) {
	st := c.change
	if st == nil || st.receiver == nil || m.Phase != st.newPhase {
		c.early.deals = append(c.early.deals, m)
		return
	}
	if m.Deal == nil || st.dealsGot[m.Deal.Dealer] {
		return
	}
	if err := st.receiver.HandleDeal(m.Deal); err != nil {
		return // Byzantine dealer: its deal is ignored (complaint flow)
	}
	st.dealsGot[m.Deal.Dealer] = true
	// Replay sub-shares that overtook this deal.
	if pend := st.pendingSubs[m.Deal.Dealer]; len(pend) > 0 {
		delete(st.pendingSubs, m.Deal.Dealer)
		for _, sub := range pend {
			c.handleReshareSub(sub)
		}
	}
	c.tryFinishChange()
}

// handleReshareSub validates and records a dealer's private sub-share.
func (c *Controller) handleReshareSub(m protocol.MsgReshareSub) {
	st := c.change
	if st == nil || st.receiver == nil || m.Phase != st.newPhase {
		c.early.subs = append(c.early.subs, m)
		return
	}
	if st.subsGot[m.Sub.Dealer] {
		return
	}
	// A sub-share can overtake its dealer's deal (independent per-message
	// jitter); the receiver cannot verify it yet, so hold it until the
	// deal lands rather than dropping it and stalling the reshare.
	if !st.dealsGot[m.Sub.Dealer] {
		st.pendingSubs[m.Sub.Dealer] = append(st.pendingSubs[m.Sub.Dealer], m)
		return
	}
	if err := st.receiver.HandleSubShare(m.Sub); err != nil {
		return
	}
	st.subsGot[m.Sub.Dealer] = true
	c.tryFinishChange()
}

// drainEarlyReshare replays buffered reshare traffic.
func (c *Controller) drainEarlyReshare() {
	deals := c.early.deals
	subs := c.early.subs
	c.early.deals = nil
	c.early.subs = nil
	for _, d := range deals {
		c.handleReshareDeal(d)
	}
	for _, s := range subs {
		c.handleReshareSub(s)
	}
}

// tryFinishChange finalizes the reshare once every dealer's deal and
// sub-share arrived.
func (c *Controller) tryFinishChange() {
	st := c.change
	if st == nil || st.receiver == nil {
		return
	}
	for _, idx := range st.dealerSet {
		if !st.dealsGot[idx] || !st.subsGot[idx] {
			return
		}
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.ReshareCompute)
	newShare, newGK, err := st.receiver.Finalize(st.dealerSet)
	if err != nil {
		return
	}
	c.completeChange(newShare, newGK)
}

// completeChange installs the new membership epoch: new share and group
// key (same public key), new atomic-broadcast group, config push to
// switches, requeued events, and the cross-domain membership notice.
func (c *Controller) completeChange(newShare bls.KeyShare, newGK *bls.GroupKey) {
	st := c.change
	c.change = nil
	c.members = st.newMembers
	c.phase = st.newPhase
	c.cfg.Share = newShare
	c.cfg.GroupKey = newGK
	c.Reshares++
	// Old-phase batch refs can never be dispatched again (sendUpdateAuto
	// requires a same-phase ref and falls back to legacy per-update shares
	// across phases), so drop them with the phase.
	c.batchOf = make(map[string]*batchRef)
	if err := c.rebuildReplica(); err != nil {
		c.replica = nil
	}
	// Replay atomic-broadcast traffic that arrived for the new epoch.
	buffered := st.futureBFT
	for _, b := range buffered {
		c.handleBFT(b.from, b.msg)
	}
	// Resubmit our undelivered submissions and the queued events in the
	// new phase; delivery-level dedup collapses duplicates.
	if c.replica != nil {
		// Sorted for deterministic resubmission order (map iteration would
		// otherwise vary run to run and break bit-identical replays).
		keys := make([]string, 0, len(c.pendingSubmit))
		for k := range c.pendingSubmit {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c.replica.Submit(c.pendingSubmit[k])
		}
		for _, ev := range st.queued {
			ev := ev
			c.submitItem(protocol.BroadcastItem{Event: &ev, Phase: c.phase})
		}
	}
	// Push the new configuration (quorum, members, aggregator) to
	// switches, threshold-signed under the unchanged public key. Drain
	// config shares that raced ahead of our own phase switch first.
	if c.memberSlot(c.cfg.ID) >= 0 {
		earlyCfg := c.earlyConfig
		c.earlyConfig = nil
		for _, m := range earlyCfg {
			c.handleConfigShare(m)
		}
		c.PushConfig()
		if c.leaderForForwarding() {
			c.announceMembershipToPeers()
		}
		// Re-delegate the metadata roles to the new membership: the next
		// root retires departed members' role keys, and the fresh Feldman
		// commitments already invalidate every pre-reshare BLS share.
		c.rotateRootAfterChange()
	}
}

// announceMembershipToPeers sends the §4.3 final-step notice to every
// other domain so forwarded events keep reaching valid recipients.
func (c *Controller) announceMembershipToPeers() {
	if len(c.cfg.PeerDomains) == 0 {
		return
	}
	info := fmt.Sprintf("%d|", c.cfg.Domain)
	for i, m := range c.members {
		if i > 0 {
			info += "|"
		}
		info += string(m)
	}
	ev := protocol.Event{
		ID:        openflow.MsgID{Origin: string(c.cfg.ID) + "/member", Seq: c.phase},
		Kind:      protocol.EventMembershipInfo,
		Forwarded: true,
		Info:      info,
	}
	payload := ev.Encode()
	var env pki.Envelope
	if c.cfg.CryptoReal {
		env = c.cfg.Keys.Seal(payload)
	} else {
		env = pki.Envelope{From: c.cfg.ID, Payload: payload}
	}
	for dom, peers := range c.cfg.PeerDomains {
		if dom == c.cfg.Domain || len(peers) == 0 {
			continue
		}
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(peers[0]),
			protocol.MsgEvent{Env: env}, len(payload)+96)
	}
}

// handleStateTransfer bootstraps this (joining) controller with the old
// membership view and key material, then sets up its reshare receiver.
func (c *Controller) handleStateTransfer(m protocol.MsgStateTransfer) {
	if c.change != nil || c.memberSlot(c.cfg.ID) >= 0 {
		return // already initialized
	}
	gk, ok := m.GroupKey.(*bls.GroupKey)
	if !ok || gk == nil {
		return
	}
	c.members = append([]pki.Identity(nil), m.Members...)
	c.phase = m.Phase
	c.cfg.GroupKey = gk
	if m.PeerDomains != nil {
		c.cfg.PeerDomains = m.PeerDomains
	}
	tOld := CiceroQuorum(len(m.Members))
	var dealerIDs []pki.Identity
	var dealerSet []uint32
	for slot, mem := range m.Members {
		dealerIDs = append(dealerIDs, mem)
		dealerSet = append(dealerSet, uint32(slot+1))
		if len(dealerIDs) == tOld {
			break
		}
	}
	st := &changeState{
		op:          protocol.MemberAdd,
		subject:     c.cfg.ID,
		newMembers:  append([]pki.Identity(nil), m.NewMembers...),
		newPhase:    m.NewPhase,
		tNew:        CiceroQuorum(len(m.NewMembers)),
		dealerIDs:   dealerIDs,
		dealerSet:   dealerSet,
		dealsGot:    make(map[uint32]bool),
		subsGot:     make(map[uint32]bool),
		pendingSubs: make(map[uint32][]protocol.MsgReshareSub),
	}
	for i, mem := range st.newMembers {
		if mem == c.cfg.ID {
			st.myNewIndex = uint32(i + 1)
		}
	}
	recv, err := dkg.NewReshareReceiver(c.cfg.Scheme, gk, st.myNewIndex, st.tNew, len(st.newMembers))
	if err != nil {
		return
	}
	st.receiver = recv
	c.change = st
	c.drainEarlyReshare()
}
