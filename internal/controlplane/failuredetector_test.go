package controlplane

import (
	"crypto/rand"
	"testing"
	"time"

	"cicero/internal/protocol"
	"cicero/internal/routing"
	"cicero/internal/scheduler"
	"cicero/internal/simnet"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/dkg"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/pki"
)

// fdSwitch is a stub switch that records configuration pushes (and acks
// updates so plans complete), for observing membership-change fallout.
type fdSwitch struct {
	id      string
	net     *simnet.Network
	keys    *pki.KeyPair
	members []pki.Identity
	configs []protocol.MsgConfig
}

func (s *fdSwitch) HandleMessage(from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case protocol.MsgConfig:
		s.configs = append(s.configs, m)
	case protocol.MsgUpdate:
		ack := protocol.Ack{UpdateID: m.UpdateID, Switch: s.id, Applied: true}
		env := s.keys.Seal(ack.Encode())
		for _, ctl := range s.members {
			s.net.Send(simnet.NodeID(s.id), simnet.NodeID(ctl), protocol.MsgAck{Env: env}, 128)
		}
	}
}

// fdCluster builds n Cicero controllers with an active failure detector
// and one stub switch, all on a fresh simulator.
type fdCluster struct {
	sim     *simnet.Simulator
	net     *simnet.Network
	members []pki.Identity
	ctls    []*Controller
	sw      *fdSwitch
}

func buildFDCluster(t *testing.T, n int, fd *FailureDetectorConfig) *fdCluster {
	t.Helper()
	sim := simnet.NewSimulator(1)
	net := simnet.NewNetwork(sim, 200*time.Microsecond)
	dir := pki.NewDirectory()
	g := lineGraph(t)
	scheme := bls.NewScheme(pairing.Fast254())
	quorum := CiceroQuorum(n)
	gk, shares, err := dkg.Run(scheme, rand.Reader, quorum, n)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]pki.Identity, n)
	for i := range members {
		members[i] = pki.Identity(string(rune('a'+i)) + "-ctl")
	}
	swKeys, _ := pki.NewKeyPair(rand.Reader, "s1")
	dir.MustRegister(swKeys)
	sw := &fdSwitch{id: "s1", net: net, keys: swKeys, members: members}
	net.Register("s1", sw)

	cl := &fdCluster{sim: sim, net: net, members: members, sw: sw}
	for i, id := range members {
		keys, _ := pki.NewKeyPair(rand.Reader, id)
		dir.MustRegister(keys)
		c, err := New(Config{
			ID: id, Members: members, Net: net, Keys: keys, Directory: dir,
			Protocol: ProtoCicero, Scheme: scheme, GroupKey: gk, Share: shares[i],
			App: &routing.ShortestPath{Graph: g}, Sched: scheduler.ReversePath{},
			Switches: []string{"s1"}, Bootstrap: i == 0,
			ViewChangeTimeout: 15 * time.Millisecond,
			FailureDetector:   fd,
		})
		if err != nil {
			t.Fatalf("New(%s): %v", id, err)
		}
		cl.ctls = append(cl.ctls, c)
	}
	return cl
}

func testFD() *FailureDetectorConfig {
	return &FailureDetectorConfig{
		Interval: 5 * time.Millisecond,
		Timeout:  20 * time.Millisecond,
		Horizon:  250 * time.Millisecond,
	}
}

// TestFailureDetectorRemovesPartitionedMember: a member partitioned from
// everyone is suspected, removed through consensus, and the survivors push
// a fresh configuration to the switches — while the isolated member alone
// cannot shrink the membership (no split brain).
func TestFailureDetectorRemovesPartitionedMember(t *testing.T) {
	cl := buildFDCluster(t, 5, testFD())
	victim := cl.members[4]
	var rest []simnet.NodeID
	for _, m := range cl.members[:4] {
		rest = append(rest, simnet.NodeID(m))
	}
	cl.net.PartitionSet([]simnet.NodeID{simnet.NodeID(victim)}, append(rest, "s1"))

	// Partitioned-but-alive members retry forever; drive with a deadline.
	if _, err := cl.sim.RunUntil(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	for _, c := range cl.ctls[:4] {
		members := c.Members()
		if len(members) != 4 {
			t.Fatalf("%s still has %d members after removal: %v", c.ID(), len(members), members)
		}
		for _, m := range members {
			if m == victim {
				t.Fatalf("%s still lists the removed member %s", c.ID(), victim)
			}
		}
		if c.Phase() == 0 {
			t.Errorf("%s never advanced its membership phase", c.ID())
		}
	}
	// The isolated member cannot commit removals alone: it must still be
	// in phase 0 with the original 5-member view.
	if got := len(cl.ctls[4].Members()); got != 5 {
		t.Errorf("isolated member shrank its own membership to %d (split brain)", got)
	}
	if cl.ctls[4].Phase() != 0 {
		t.Errorf("isolated member advanced to phase %d alone", cl.ctls[4].Phase())
	}
	// Survivors pushed the new configuration to the data plane.
	found := false
	for _, cfg := range cl.sw.configs {
		if len(cfg.Members) == 4 && cfg.Phase > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("switch never received a 4-member configuration (got %d pushes)", len(cl.sw.configs))
	}
}

// TestFailureDetectorToleratesRecovery: a partition shorter than the
// timeout must not cost the member its seat.
func TestFailureDetectorToleratesRecovery(t *testing.T) {
	cl := buildFDCluster(t, 5, testFD())
	victim := simnet.NodeID(cl.members[4])
	var rest []simnet.NodeID
	for _, m := range cl.members[:4] {
		rest = append(rest, simnet.NodeID(m))
	}
	// Sever for less than the 20ms timeout, starting after the first
	// heartbeat round has seeded lastSeen.
	cl.sim.Schedule(10*time.Millisecond, func() {
		cl.net.PartitionSet([]simnet.NodeID{victim}, rest)
	})
	cl.sim.Schedule(24*time.Millisecond, func() {
		cl.net.HealSet([]simnet.NodeID{victim}, rest)
	})
	if _, err := cl.sim.RunUntil(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, c := range cl.ctls {
		if got := len(c.Members()); got != 5 {
			t.Fatalf("%s has %d members after a sub-timeout partition", c.ID(), got)
		}
		if c.Phase() != 0 {
			t.Fatalf("%s reshared (phase %d) despite timely recovery", c.ID(), c.Phase())
		}
	}
}

// TestHeartbeatKeepsHealthyMembership: with no faults the detector must
// never remove anyone.
func TestHeartbeatKeepsHealthyMembership(t *testing.T) {
	cl := buildFDCluster(t, 4, testFD())
	if _, err := cl.sim.RunUntil(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, c := range cl.ctls {
		if got := len(c.Members()); got != 4 {
			t.Fatalf("%s lost members without any fault: %d", c.ID(), got)
		}
		if c.Phase() != 0 {
			t.Fatalf("%s reshared without any fault", c.ID())
		}
	}
}

// TestFailureDetectorAsymmetricPartition: a member whose outbound links
// are severed (it hears everything, says nothing) is indistinguishable
// from a crashed member to the rest of the cluster, so the survivors must
// remove it — the one-way partition case the two-way tests cannot cover.
func TestFailureDetectorAsymmetricPartition(t *testing.T) {
	cl := buildFDCluster(t, 5, testFD())
	victim := simnet.NodeID(cl.members[4])
	for _, m := range cl.members[:4] {
		cl.net.PartitionOneWay(victim, simnet.NodeID(m))
	}
	cl.net.PartitionOneWay(victim, "s1")
	if _, err := cl.sim.RunUntil(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, c := range cl.ctls[:4] {
		members := c.Members()
		if len(members) != 4 {
			t.Fatalf("%s kept the mute member: %v", c.ID(), members)
		}
		for _, m := range members {
			if simnet.NodeID(m) == victim {
				t.Fatalf("%s still lists the mute member %s", c.ID(), victim)
			}
		}
	}
	// The mute member cannot commit anything on its own: whatever view of
	// the removal it observed, it must not have removed anyone *else*.
	for _, m := range cl.members[:4] {
		found := false
		for _, got := range cl.ctls[4].Members() {
			if got == m {
				found = true
			}
		}
		if !found {
			t.Fatalf("mute member unilaterally dropped %s from its view", m)
		}
	}
}
