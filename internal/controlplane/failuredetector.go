package controlplane

import (
	"cicero/internal/fabric"
	"cicero/internal/protocol"
)

// This file implements the heartbeat failure detector of §5.1: members
// exchange periodic heartbeats, and a member silent past the timeout is
// suspected and proposed for removal through the consensus protocol. The
// paper notes detection cannot be perfectly accurate; a premature removal
// only costs liveness, and removed controllers can be re-added.

// scheduleHeartbeat arms the periodic heartbeat/check loop. The loop
// stops after the configured horizon so simulations quiesce.
func (c *Controller) scheduleHeartbeat() {
	fd := c.cfg.FailureDetector
	if fd == nil || fd.Interval <= 0 {
		return
	}
	c.cfg.Net.After(fabric.NodeID(c.cfg.ID), fd.Interval, func() {
		if c.stopped {
			return
		}
		now := c.cfg.Net.Now()
		if fd.Horizon > 0 && now > fd.Horizon {
			return
		}
		c.hbSeq++
		hb := protocol.MsgHeartbeat{From: c.cfg.ID, Seq: c.hbSeq}
		for _, m := range c.members {
			if m == c.cfg.ID {
				continue
			}
			c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(m), hb, 64)
		}
		c.checkSuspects(now)
		c.scheduleHeartbeat()
	})
}

// checkSuspects proposes removal of members silent past the timeout.
func (c *Controller) checkSuspects(now fabric.Time) {
	fd := c.cfg.FailureDetector
	for _, m := range c.members {
		if m == c.cfg.ID {
			continue
		}
		last, seen := c.lastSeen[m]
		if !seen {
			// Grace period: treat the first observation point as "alive
			// now" so freshly added members are not instantly suspected.
			c.lastSeen[m] = now
			continue
		}
		if now-last > fd.Timeout && !c.suspected[m] {
			c.suspected[m] = true
			// Propose removal; agreement and resharing do the rest.
			_ = c.RequestRemoveController(m)
		}
	}
}
