// Crash/restart recovery for controllers and switch resynchronization.
//
// A crashed controller restarts with empty volatile state: no delivered
// events, no scheduler engine, no audit ledger, and an atomic-broadcast
// replica at view 0. Its durable state is only the key material it was
// provisioned with (identity keys and its threshold share — secrets that a
// deployment keeps on disk or in an HSM). Recovery rebuilds the volatile
// state from peers:
//
//  1. The restarted controller multicasts MsgRecoverRequest.
//  2. Each peer answers with MsgRecoverState: the canonical encodings of
//     every event in its audit ledger (in broadcast delivery order) plus
//     its replica's (view, lastDelivered) coordinates.
//  3. The controller adopts a response only when f+1 responses are
//     byte-identical (same event history, same coordinates), where
//     f = ⌊(n−1)/3⌋. At least one of any f+1 identical responses comes
//     from an honest peer, so the adopted history is an honest history: a
//     Byzantine peer can neither fabricate events nor skip suffixes.
//  4. The adopted events replay through the normal delivery path
//     (dedup → ledger append → plan → schedule → dispatch), rebuilding
//     the engine and the ledger exactly as live delivery would have, and
//     the replica fast-forwards with SyncTo.
//
// Requiring exact agreement rather than prefix containment trades a
// little liveness for simplicity and safety: while the group is actively
// delivering, honest peers may transiently disagree and the controller
// just asks again (sendRecoverRequests retries on a timer). The chaos
// drain phase quiesces traffic, so honest responses converge and recovery
// terminates. Responses from a different membership phase are ignored —
// a controller that slept through a membership change resynchronizes via
// the membership protocol's state transfer instead.
//
// Adoption ends the mute window but not the session: the adopted snapshot
// is as old as the slowest of its f+1 vouchers, deliveries the group made
// during the transfer are invisible to a mute replica, and nothing in the
// broadcast layer retransmits committed slots. The session therefore keeps
// polling in confirmation rounds — each quorum whose vouched delivery
// horizon advanced past the replica's is re-adopted (replay is
// idempotent, SyncTo monotonic) — and closes only when a round confirms
// no further progress.
//
// Replayed dispatches (and all later dispatches of a recovered
// controller) carry the Resend flag: a switch that already decided the
// update re-acknowledges it instead of staying silent, which is what lets
// the rebuilt scheduler engine release dependents whose acks died with
// the crash.
//
// Switches recover symmetrically but more simply: a restarted switch
// multicasts MsgResyncRequest and every controller retransmits the
// updates it logged for that switch, with fresh signature shares and the
// Resend flag. The flow table rebuilds through the ordinary
// quorum-authentication path, so resynchronization is exactly as hard to
// forge as a first-time update.
package controlplane

import (
	"crypto/sha256"
	"encoding/binary"
	"time"

	"cicero/internal/audit"
	"cicero/internal/fabric"
	"cicero/internal/protocol"
)

// recoverySession tracks an in-flight controller recovery.
type recoverySession struct {
	responses map[string]protocol.MsgRecoverState // keyed by responder identity
	attempts  int
	// adopted flips when the first f+1-identical state is applied; the
	// replica is mute until then. The session itself lives on through
	// confirmation rounds until a vouched horizon stops advancing.
	adopted bool
	// held buffers broadcast submissions that arrived while the replica
	// was mute; they are submitted after adoption.
	held [][]byte
}

// Recovery retry schedule: how often the recovering controller re-asks
// its peers, and for how long before it gives up (peers answer only when
// they are not recovering themselves, so a retry loop is required — and
// it must terminate so live fabrics can quiesce).
const (
	recoverRetryInterval = 250 * time.Millisecond
	recoverMaxAttempts   = 120
)

// StartRecovery begins crash recovery. Call it once, from the node's
// serial execution context, right after constructing the replacement
// controller. It is a no-op for the centralized baseline (there are no
// peers to recover from).
func (c *Controller) StartRecovery() {
	if c.stopped || c.recovered || (c.recovery != nil && c.recovery.attempts > 0) {
		return
	}
	if c.cfg.Protocol == ProtoCentralized || len(c.members) < 2 {
		c.recovery = nil
		c.recovered = true
		c.Recoveries++
		return
	}
	// The session may already exist: a controller built with
	// Config.CrashRecovery is born recovering so its mute window covers
	// every message since registration.
	if c.recovery == nil {
		c.recovery = &recoverySession{responses: make(map[string]protocol.MsgRecoverState)}
	}
	c.sendRecoverRequests()
	// Metadata moves outside the broadcast, so the event replay below
	// will not restore it; ask peers for their verified sets (store
	// monotonicity discards stale answers).
	c.requestMetaCatchup()
}

// Recovering reports whether a recovery is in flight (started and not yet
// adopted). Confirmation rounds after adoption do not count: the replica
// speaks again as soon as the first vouched state is applied.
func (c *Controller) Recovering() bool {
	return c.recovery != nil && !c.recovery.adopted
}

// Recovered reports whether this controller completed a crash recovery.
func (c *Controller) Recovered() bool { return c.recovered }

// sendRecoverRequests multicasts the recovery request and re-arms the
// retry timer until a consistent quorum of responses is adopted.
func (c *Controller) sendRecoverRequests() {
	if c.stopped || c.recovery == nil {
		return
	}
	if c.recovery.attempts >= recoverMaxAttempts {
		// Give up; a later StartRecovery may be issued by the operator. An
		// adopted session closes for good — only the unconfirmed tail of
		// the catch-up loop is abandoned.
		if c.recovery.adopted {
			c.recovery = nil
		}
		return
	}
	c.recovery.attempts++
	msg := protocol.MsgRecoverRequest{From: c.cfg.ID, Phase: c.phase}
	for _, m := range c.members {
		if m == c.cfg.ID {
			continue
		}
		c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(m), msg, 64)
	}
	c.cfg.Net.After(fabric.NodeID(c.cfg.ID), recoverRetryInterval, c.sendRecoverRequests)
}

// handleRecoverRequest answers a restarted peer with this controller's
// event history and broadcast coordinates. A controller that is itself
// recovering stays silent: it has no authoritative history to vouch for.
func (c *Controller) handleRecoverRequest(m protocol.MsgRecoverRequest) {
	if c.Recovering() || m.Phase != c.phase || m.From == c.cfg.ID {
		return
	}
	if c.memberSlot(m.From) < 0 {
		return
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.MsgProcess)
	resp := protocol.MsgRecoverState{From: c.cfg.ID, Phase: c.phase}
	if c.replica != nil {
		resp.View = c.replica.View()
		resp.LastDelivered = c.replica.LastDelivered()
	}
	for _, r := range c.ledger.Records() {
		if r.Kind == audit.KindEvent {
			resp.Events = append(resp.Events, r.Canonical)
		}
	}
	size := 64
	for _, e := range resp.Events {
		size += len(e)
	}
	c.cfg.Net.Send(fabric.NodeID(c.cfg.ID), fabric.NodeID(m.From), resp, size)
}

// handleRecoverState collects one peer's recovery response and adopts as
// soon as f+1 identical responses exist.
func (c *Controller) handleRecoverState(m protocol.MsgRecoverState) {
	if c.recovery == nil || m.Phase != c.phase {
		return
	}
	if c.memberSlot(m.From) < 0 || m.From == c.cfg.ID {
		return
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.MsgProcess)
	c.recovery.responses[string(m.From)] = m
	c.tryAdoptRecovery()
}

// recoverStateDigest hashes the adoption-relevant content of a response.
func recoverStateDigest(m protocol.MsgRecoverState) [32]byte {
	h := sha256.New()
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[:8], m.View)
	binary.BigEndian.PutUint64(hdr[8:], m.LastDelivered)
	h.Write(hdr[:])
	for _, e := range m.Events {
		binary.BigEndian.PutUint64(hdr[:8], uint64(len(e)))
		h.Write(hdr[:8])
		h.Write(e)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// tryAdoptRecovery adopts when f+1 byte-identical responses agree.
func (c *Controller) tryAdoptRecovery() {
	need := (len(c.members)-1)/3 + 1
	groups := make(map[[32]byte][]protocol.MsgRecoverState)
	for _, r := range c.recovery.responses {
		d := recoverStateDigest(r)
		groups[d] = append(groups[d], r)
		if len(groups[d]) >= need {
			c.adoptRecovery(groups[d][0])
			return
		}
	}
}

// adoptRecovery replays the vouched event history through the normal
// delivery path and fast-forwards the broadcast replica. First adoption
// ends the mute window; later (confirmation) adoptions apply only the
// progress the group made during the previous transfer, and a round that
// vouches no progress closes the session.
func (c *Controller) adoptRecovery(state protocol.MsgRecoverState) {
	first := !c.recovery.adopted
	if !first && c.replica != nil && state.LastDelivered <= c.replica.LastDelivered() {
		c.recovery = nil // converged: the vouched horizon stopped advancing
		return
	}
	for _, raw := range state.Events {
		ev, err := protocol.DecodeEvent(raw)
		if err != nil {
			continue // a vouched history never contains undecodable events
		}
		key := ev.ID.String()
		if c.deliveredEvents[key] {
			continue
		}
		c.seenEvents[key] = true
		c.deliveredEvents[key] = true
		c.EventsDelivered++
		c.ledger.Append(audit.KindEvent, key, raw)
		c.processEvent(ev)
	}
	if c.replica != nil {
		c.replica.SyncTo(state.View, state.LastDelivered, nil)
	}
	if first {
		c.recovery.adopted = true
		c.recovered = true
		c.Recoveries++
		// Un-mute: replay the submissions held back while the replica had
		// no trustworthy coordinates. Delivery-level dedup discards any
		// that the adopted history already covers.
		for _, payload := range c.recovery.held {
			c.pendingSubmit[string(payload)] = payload
			c.replica.Submit(payload)
		}
		c.recovery.held = nil
	}
	// Demand fresh agreement for the next confirmation round; the retry
	// timer chain keeps the requests flowing until convergence.
	c.recovery.responses = make(map[string]protocol.MsgRecoverState)
}

// handleResyncRequest retransmits every logged update targeting the
// requesting switch, with fresh signature shares and the Resend flag. A
// spoofed request costs at most one retransmission burst and cannot
// install anything a real update could not.
func (c *Controller) handleResyncRequest(m protocol.MsgResyncRequest) {
	if m.Switch == "" {
		return
	}
	c.cfg.Net.Charge(fabric.NodeID(c.cfg.ID), c.cfg.Cost.MsgProcess)
	for _, rec := range c.dispatchLog {
		if len(rec.mods) == 0 || rec.mods[0].Switch != m.Switch {
			continue
		}
		// Always the legacy per-update path: resync shares must combine
		// with whatever the other controllers send after their own crashes
		// or ref expiry, and only per-update shares are universally
		// poolable. Batching is a fast-path optimization, not a recovery
		// dependency.
		c.sendUpdate(rec.id, rec.phase, rec.mods, true)
	}
}

// Frozen-horizon watchdog (gap-stall self-recovery).
//
// A replica can wedge without crashing: the agreement traffic for one
// slot is lost to a partition while the rest of the group keeps
// deliving, and once peers garbage-collect past the gap nothing in the
// broadcast layer will ever retransmit it. The replica then sits with
// committed slots piling up above a delivery horizon that can no longer
// move — alive, responsive, and permanently behind. Historically only a
// supervisor's NudgeRecover rescued this state; the watchdog below lets
// the controller notice the signature itself (committed slots above an
// uncommittable gap, horizon frozen across a full timeout window) and
// start its own authenticated f+1 recovery, which fast-forwards the
// replica past the dead slot via the vouched-state transfer.

// gapStallDefaultTimeout bounds the watchdog wait when no view-change
// timeout is configured.
const gapStallDefaultTimeout = time.Second

// gapStallTimeout is how long the horizon must stay frozen (with
// committed slots above it) before self-recovery fires. Several
// view-change timeouts: a view change can legitimately resurrect the
// gap slot when peers still hold its agreement state, so the watchdog
// must be the slower mechanism.
func (c *Controller) gapStallTimeout() time.Duration {
	if c.cfg.ViewChangeTimeout > 0 {
		return 4 * c.cfg.ViewChangeTimeout
	}
	return gapStallDefaultTimeout
}

// checkGapStall arms the watchdog when the wedge signature appears. It
// is called after every atomic-broadcast message; the timer captures
// the current horizon and fires only if it never moved.
func (c *Controller) checkGapStall() {
	if c.replica == nil || c.gapArmed || c.stopped || c.Recovering() {
		return
	}
	if c.replica.GapStalled() == 0 {
		return
	}
	c.gapArmed = true
	horizon := c.replica.LastDelivered()
	c.cfg.Net.After(fabric.NodeID(c.cfg.ID), c.gapStallTimeout(), func() {
		c.onGapStallTimer(horizon)
	})
}

// onGapStallTimer fires one watchdog check: if the horizon is still
// where it was armed and committed slots still sit above it, the gap is
// dead and recovery is the only way forward.
func (c *Controller) onGapStallTimer(horizon uint64) {
	c.gapArmed = false
	if c.stopped || c.replica == nil || c.Recovering() {
		return
	}
	if c.replica.LastDelivered() != horizon || c.replica.GapStalled() == 0 {
		return // progress since arming; re-armed on the next stall
	}
	c.GapRecoveries++
	// Clear the completed-recovery latch: this is a fresh wedge, not a
	// retry of a finished session.
	c.recovered = false
	c.recovery = nil
	c.StartRecovery()
}

// RedispatchUnacked retransmits every released-but-unacknowledged update
// (fresh shares, Resend flag) and returns how many were sent. The chaos
// drain phase calls it to recover in-flight updates whose dispatch or ack
// died in a fault window.
func (c *Controller) RedispatchUnacked() int {
	if c.stopped || c.engine == nil {
		return 0
	}
	ids := c.engine.Unacked()
	if len(ids) == 0 {
		return 0
	}
	byKey := make(map[string]dispatchRecord, len(c.dispatchLog))
	for _, rec := range c.dispatchLog {
		byKey[rec.id.String()] = rec
	}
	sent := 0
	for _, id := range ids {
		rec, ok := byKey[id.String()]
		if !ok {
			continue
		}
		// Legacy path on purpose (see handleResyncRequest): a retransmission
		// quorum must assemble across controllers that may no longer share a
		// batch ref for this update.
		c.sendUpdate(rec.id, rec.phase, rec.mods, true)
		sent++
	}
	return sent
}
