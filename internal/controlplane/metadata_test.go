package controlplane

import (
	"crypto/rand"
	"testing"
	"time"

	"cicero/internal/dataplane"
	"cicero/internal/metarepo"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/routing"
	"cicero/internal/scheduler"
	"cicero/internal/simnet"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/dkg"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/pki"
)

// metaCluster is a full Cicero control plane with the metadata plane
// enabled and real data-plane switches (each with its own trusted
// store).
type metaCluster struct {
	sim      *simnet.Simulator
	net      *simnet.Network
	dir      *pki.Directory
	scheme   *bls.Scheme
	gk       *bls.GroupKey
	shares   []bls.KeyShare // genesis shares, saved for retired-share attacks
	keyPairs []*pki.KeyPair
	members  []pki.Identity
	ctls     []*Controller
	sws      map[string]*dataplane.Switch
	rootEnv  protocol.MetaEnvelope
}

func buildMetaCluster(t *testing.T, n int) *metaCluster {
	t.Helper()
	sim := simnet.NewSimulator(7)
	net := simnet.NewNetwork(sim, 200*time.Microsecond)
	dir := pki.NewDirectory()
	g := lineGraph(t)
	scheme := bls.NewScheme(pairing.Fast254())
	quorum := CiceroQuorum(n)
	gk, shares, err := dkg.Run(scheme, rand.Reader, quorum, n)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]pki.Identity, n)
	keyPairs := make([]*pki.KeyPair, n)
	for i := range members {
		members[i] = pki.Identity(string(rune('a'+i)) + "-ctl")
		kp, _ := pki.NewKeyPair(rand.Reader, members[i])
		dir.MustRegister(kp)
		keyPairs[i] = kp
	}
	root := metarepo.GenesisRoot(quorum, keyPairs, int64(net.Now()), int64(time.Hour))
	rootEnv, err := metarepo.SignRootDirect(scheme, gk, shares, root)
	if err != nil {
		t.Fatal(err)
	}
	cl := &metaCluster{
		sim: sim, net: net, dir: dir, scheme: scheme, gk: gk, shares: shares,
		keyPairs: keyPairs, members: members, sws: make(map[string]*dataplane.Switch),
		rootEnv: rootEnv,
	}
	switchIDs := []string{"s1", "s2", "s3"}
	for _, id := range switchIDs {
		swKeys, _ := pki.NewKeyPair(rand.Reader, pki.Identity(id))
		dir.MustRegister(swKeys)
		sw, err := dataplane.New(dataplane.Config{
			ID: id, Net: net, Mode: dataplane.ModeThreshold,
			Keys: swKeys, Directory: dir,
			Scheme: scheme, GroupKey: gk, Quorum: quorum,
			Metadata: &dataplane.MetadataConfig{Genesis: rootEnv},
		})
		if err != nil {
			t.Fatalf("switch %s: %v", id, err)
		}
		sw.Bootstrap(members, "", quorum)
		cl.sws[id] = sw
	}
	for i, id := range members {
		c, err := New(Config{
			ID: id, Members: members, Net: net, Keys: keyPairs[i], Directory: dir,
			Protocol: ProtoCicero, Scheme: scheme, GroupKey: gk, Share: shares[i],
			App: &routing.ShortestPath{Graph: g}, Sched: scheduler.ReversePath{},
			Switches: switchIDs, Bootstrap: i == 0,
			ViewChangeTimeout: 15 * time.Millisecond,
			Metadata: &MetadataConfig{
				Genesis: rootEnv, TTL: time.Hour, TimestampTTL: 5 * time.Second,
			},
		})
		if err != nil {
			t.Fatalf("New(%s): %v", id, err)
		}
		cl.ctls = append(cl.ctls, c)
	}
	return cl
}

func (cl *metaCluster) run(t *testing.T) {
	t.Helper()
	if _, err := cl.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMetadataPublishAdoptsEverywhere: a policy published by any member
// is ordered, quorum-signed, assembled by the leader, and adopted by
// every controller and switch store with a live freshness proof.
func TestMetadataPublishAdoptsEverywhere(t *testing.T) {
	cl := buildMetaCluster(t, 4)
	cl.ctls[2].PublishPolicy(metarepo.Policy{
		Quorum: CiceroQuorum(4),
		Flows:  []metarepo.FlowPolicy{{Src: "h1", Dst: "h2", Allow: true}},
	})
	cl.run(t)

	for _, c := range cl.ctls {
		_, tg, sn, ts := c.MetaStore().Versions()
		if tg != 1 || sn != 1 || ts < 1 {
			t.Fatalf("%s: versions targets=%d snapshot=%d timestamp=%d, want 1/1/>=1", c.ID(), tg, sn, ts)
		}
	}
	now := int64(cl.net.Now())
	for id, sw := range cl.sws {
		st := sw.MetaStore()
		_, tg, _, _ := st.Versions()
		if tg != 1 {
			t.Fatalf("switch %s: targets v%d, want 1", id, tg)
		}
		if !st.Fresh(now) {
			t.Fatalf("switch %s: store not fresh after adoption", id)
		}
		p := st.PolicyTargets()
		if len(p.Policy.Flows) != 1 || p.Policy.Flows[0].Src != "h1" {
			t.Fatalf("switch %s: wrong policy payload %+v", id, p.Policy)
		}
	}
	if cl.ctls[0].MetaPublished != 1 {
		t.Fatalf("leader MetaPublished = %d, want 1", cl.ctls[0].MetaPublished)
	}
	// Replaying the adopted set is idempotent; replaying it after a newer
	// set lands is a rollback. Second publication supersedes the first.
	cl.ctls[1].PublishPolicy(metarepo.Policy{Quorum: CiceroQuorum(4)})
	cl.run(t)
	for id, sw := range cl.sws {
		_, tg, _, _ := sw.MetaStore().Versions()
		if tg != 2 {
			t.Fatalf("switch %s: targets v%d after second publication, want 2", id, tg)
		}
	}
}

// TestMetadataTimestampRefreshKeepsFresh: leader refreshes advance the
// freshness proof without touching targets/snapshot, and a store that
// stops hearing refreshes goes stale (the freeze defense).
func TestMetadataTimestampRefreshKeepsFresh(t *testing.T) {
	cl := buildMetaCluster(t, 4)
	cl.ctls[0].PublishPolicy(metarepo.Policy{Quorum: 2})
	cl.run(t)

	sw := cl.sws["s1"]
	_, _, _, ts1 := sw.MetaStore().Versions()
	cl.ctls[0].RefreshMetaTimestamp()
	cl.run(t)
	_, tg, _, ts2 := sw.MetaStore().Versions()
	if ts2 != ts1+1 {
		t.Fatalf("timestamp version %d after refresh, want %d", ts2, ts1+1)
	}
	if tg != 1 {
		t.Fatalf("refresh touched targets (v%d)", tg)
	}
	if cl.ctls[0].MetaRefreshes != 1 {
		t.Fatalf("MetaRefreshes = %d, want 1", cl.ctls[0].MetaRefreshes)
	}
	// Non-leader refuses to mint.
	cl.ctls[1].RefreshMetaTimestamp()
	if cl.ctls[1].MetaRefreshes != 0 {
		t.Fatal("non-leader minted a timestamp refresh")
	}
	// Past the TTL with no refresh the proof is stale.
	doc := sw.MetaStore().TimestampDoc()
	if sw.MetaStore().Fresh(doc.ExpiresNS + 1) {
		t.Fatal("store claims freshness past the proof's expiry")
	}
}

// TestMetadataReshareUnderLoad (the proactive-resharing coverage): a
// member is removed mid-campaign while flow events are in flight. The
// reshare installs fresh shares, the leader rotates the root, the
// removed member's role key retires everywhere, metadata signed by it
// is rejected, a BLS share minted from a pre-reshare sharing is
// rejected by the root collector — and the in-flight updates still
// complete.
func TestMetadataReshareUnderLoad(t *testing.T) {
	n := 7
	cl := buildMetaCluster(t, n)
	cl.ctls[0].PublishPolicy(metarepo.Policy{Quorum: CiceroQuorum(n)})
	cl.run(t)

	// In-flight load: several flow events, then the removal, then more.
	inject := func(seq uint64) {
		cl.ctls[0].InjectEvent(protocol.Event{
			ID:   openflow.MsgID{Origin: "load", Seq: seq},
			Kind: protocol.EventFlowRequest, Src: "h1", Dst: "h2",
		})
	}
	for i := uint64(1); i <= 3; i++ {
		inject(i)
	}
	removed := cl.members[n-1]
	if err := cl.ctls[0].RequestRemoveController(removed); err != nil {
		t.Fatal(err)
	}
	for i := uint64(4); i <= 6; i++ {
		inject(i)
	}
	cl.run(t)

	leader := cl.ctls[0]
	if leader.Reshares != 1 {
		t.Fatalf("leader reshares = %d, want 1", leader.Reshares)
	}
	// The rotated root retired the removed member's key on every store.
	for _, c := range cl.ctls[:n-1] {
		root := c.MetaStore().Root()
		if root == nil || root.Version != 2 {
			t.Fatalf("%s: root %+v, want v2", c.ID(), root)
		}
		if !c.MetaStore().Retired(string(removed)) {
			t.Fatalf("%s: removed member's role key not retired", c.ID())
		}
	}
	sw := cl.sws["s1"]
	if root := sw.MetaStore().Root(); root == nil || root.Version != 2 {
		t.Fatalf("switch root %+v, want v2", root)
	}
	// The post-change policy (targets v2) reached the switches.
	tg := sw.MetaStore().PolicyTargets()
	if tg == nil || tg.Policy.Phase != leader.Phase() || len(tg.Policy.Members) != n-1 {
		t.Fatalf("switch policy targets %+v, want phase %d with %d members", tg, leader.Phase(), n-1)
	}
	// In-flight updates completed despite the reshare.
	if leader.AcksReceived == 0 || cl.sws["s2"].UpdatesApplied == 0 {
		t.Fatalf("load did not complete: acks=%d applied=%d", leader.AcksReceived, cl.sws["s2"].UpdatesApplied)
	}

	// Attack 1: new metadata signed by the retired role key.
	doc := metarepo.Targets{Version: tg.Version + 1, IssuedNS: int64(cl.net.Now()),
		ExpiresNS: int64(cl.net.Now()) + int64(time.Hour)}
	signed := metarepo.Encode(doc)
	env := protocol.MetaEnvelope{Role: protocol.MetaRoleTargets, Signed: signed,
		Sigs: []protocol.MetaSig{metarepo.SignRole(cl.keyPairs[n-1], protocol.MetaRoleTargets, signed)}}
	err := sw.MetaStore().Apply(env)
	if metarepo.Reason(err) != metarepo.RejectRetiredKey {
		t.Fatalf("retired-key targets accepted or misclassified: %v", err)
	}

	// Attack 2: a root share minted from the pre-reshare sharing. The
	// leader's collector verifies shares against the fresh commitments,
	// so the retired share is rejected even though the group public key
	// never changed.
	cur := leader.MetaStore().Root()
	var keys []metarepo.RoleKey
	for _, m := range leader.Members() {
		pub, _ := cl.dir.Lookup(m)
		keys = append(keys, metarepo.RoleKey{KeyID: string(m), Pub: append([]byte(nil), pub...)})
	}
	nextRoot := metarepo.RootAt(cur.Version+1, leader.Quorum(), keys,
		int64(cl.net.Now()), int64(time.Hour))
	nextSigned := metarepo.Encode(nextRoot)
	leader.RotateRoot()
	staleShare := cl.scheme.SignShare(cl.shares[2],
		protocol.MetaSigningBytes(protocol.MetaRoleRoot, nextSigned))
	leader.handleMetaShare(protocol.MsgMetaShare{
		Version: nextRoot.Version, Signed: nextSigned,
		ShareIndex: staleShare.Index,
		Share:      cl.scheme.Params.PointBytes(staleShare.Point),
	})
	if leader.MetaStaleShares == 0 {
		t.Fatal("pre-reshare root share was not rejected")
	}
	cl.run(t)
	// Fresh post-reshare shares still complete the rotation.
	if root := leader.MetaStore().Root(); root == nil || root.Version != cur.Version+1 {
		t.Fatalf("root rotation with fresh shares failed: %+v", root)
	}
}

// TestGapStallSelfRecovery (regression): a replica wedged behind a
// garbage-collected gap — committed slots piling up above a frozen
// delivery horizon — starts its own authenticated recovery, with no
// supervisor NudgeRecover anywhere.
func TestGapStallSelfRecovery(t *testing.T) {
	cl := buildFDCluster(t, 4, nil)
	victim := cl.ctls[3]
	victimID := simnet.NodeID(cl.members[3])
	rest := []simnet.NodeID{simnet.NodeID(cl.members[0]), simnet.NodeID(cl.members[1]),
		simnet.NodeID(cl.members[2]), "s1"}
	cl.net.PartitionSet([]simnet.NodeID{victimID}, rest)

	// Drive the live trio far enough that the victim's gap slots are
	// garbage-collected (gcKeep slots past delivery).
	inject := func(seq uint64) {
		cl.ctls[0].InjectEvent(protocol.Event{
			ID:   openflow.MsgID{Origin: "wedge", Seq: seq},
			Kind: protocol.EventFlowRequest, Src: "h1", Dst: "h2",
		})
	}
	total := uint64(140)
	for i := uint64(1); i <= total; i++ {
		inject(i)
	}
	if _, err := cl.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, last := cl.ctls[0].BroadcastCoords(); last < 130 {
		t.Fatalf("trio delivered only %d slots; gap not past GC horizon", last)
	}
	if _, last := victim.BroadcastCoords(); last != 0 {
		t.Fatalf("victim delivered %d slots while partitioned", last)
	}

	// Heal and send fresh traffic: the victim now sees slots commit far
	// above its frozen horizon, and the missing prefix is gone for good.
	cl.net.HealSet([]simnet.NodeID{victimID}, rest)
	for i := total + 1; i <= total+4; i++ {
		inject(i)
	}
	if _, err := cl.sim.Run(); err != nil {
		t.Fatal(err)
	}

	if victim.GapRecoveries == 0 {
		t.Fatal("frozen-horizon watchdog never fired")
	}
	if !victim.Recovered() {
		t.Fatal("victim did not complete recovery")
	}
	_, want := cl.ctls[0].BroadcastCoords()
	if _, got := victim.BroadcastCoords(); got != want {
		t.Fatalf("victim horizon %d after recovery, leader at %d", got, want)
	}
	if victim.EventsDelivered != cl.ctls[0].EventsDelivered {
		t.Fatalf("victim delivered %d events, leader %d",
			victim.EventsDelivered, cl.ctls[0].EventsDelivered)
	}
}

// TestMetadataConfigGate: a config push whose membership contradicts
// the signed policy for the same phase is rejected by the switch.
func TestMetadataConfigGate(t *testing.T) {
	cl := buildMetaCluster(t, 4)
	names := make([]string, len(cl.members))
	for i, m := range cl.members {
		names[i] = string(m)
	}
	cl.ctls[0].PublishPolicy(metarepo.Policy{Phase: 0, Members: names, Quorum: 2})
	cl.run(t)

	sw := cl.sws["s1"]
	forged := protocol.MsgConfig{
		Phase:  0,
		Quorum: 1,
		Members: []pki.Identity{
			"evil-1", "evil-2", "evil-3", "evil-4",
		},
	}
	// Deliver directly (CryptoReal is off, so the BLS config signature is
	// not what stops it — the metadata gate is).
	sw.HandleMessage("a-ctl", forged)
	if sw.MetaConfigRejects != 1 {
		t.Fatalf("MetaConfigRejects = %d, want 1", sw.MetaConfigRejects)
	}
	if got := sw.Aggregator(); got != "" {
		t.Fatalf("forged config installed aggregator %q", got)
	}
}
