package controlplane

import (
	"crypto/rand"
	"testing"
	"time"

	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/routing"
	"cicero/internal/scheduler"
	"cicero/internal/simnet"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/dkg"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/pki"
	"cicero/internal/topology"
)

// lineGraph builds h1 - s1 - s2 - s3 - h2.
func lineGraph(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph()
	for _, id := range []string{"s1", "s2", "s3"} {
		g.AddNode(topology.Node{ID: id, Kind: topology.KindToR})
	}
	g.AddNode(topology.Node{ID: "h1", Kind: topology.KindHost})
	g.AddNode(topology.Node{ID: "h2", Kind: topology.KindHost})
	for _, l := range [][2]string{{"h1", "s1"}, {"s1", "s2"}, {"s2", "s3"}, {"s3", "h2"}} {
		if err := g.AddLink(l[0], l[1], 100*time.Microsecond, 10); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// stubSwitch records updates and acks them immediately.
type stubSwitch struct {
	id       string
	net      *simnet.Network
	keys     *pki.KeyPair
	updates  []protocol.MsgUpdate
	acksSent int
	members  []pki.Identity
}

func (s *stubSwitch) HandleMessage(from simnet.NodeID, msg simnet.Message) {
	if m, ok := msg.(protocol.MsgUpdate); ok {
		s.updates = append(s.updates, m)
		ack := protocol.Ack{UpdateID: m.UpdateID, Switch: s.id, Applied: true}
		env := s.keys.Seal(ack.Encode())
		s.acksSent++
		for _, ctl := range s.members {
			s.net.Send(simnet.NodeID(s.id), simnet.NodeID(ctl), protocol.MsgAck{Env: env}, 128)
		}
	}
}

func TestCiceroQuorumFormula(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{4, 2}, {5, 2}, {6, 2}, {7, 3}, {9, 3}, {10, 4}, {13, 5},
	} {
		if got := CiceroQuorum(tc.n); got != tc.want {
			t.Errorf("CiceroQuorum(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	sim := simnet.NewSimulator(1)
	net := simnet.NewNetwork(sim, time.Millisecond)
	keys, _ := pki.NewKeyPair(rand.Reader, "c")
	dir := pki.NewDirectory()
	g := lineGraph(t)
	app := &routing.ShortestPath{Graph: g}

	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{ID: "c", Net: net, Keys: keys, Directory: dir}); err == nil {
		t.Error("missing app accepted")
	}
	if _, err := New(Config{
		ID: "c", Net: net, Keys: keys, Directory: dir,
		App: app, Sched: scheduler.ReversePath{},
		Protocol: ProtoCicero, Members: []pki.Identity{"c", "d", "e"},
	}); err == nil {
		t.Error("cicero with 3 members accepted")
	}
}

// TestCentralizedDependencyOrderedDispatch drives a centralized controller
// with a stub switch: updates must be released in reverse-path order,
// gated on acks.
func TestCentralizedDependencyOrderedDispatch(t *testing.T) {
	sim := simnet.NewSimulator(1)
	net := simnet.NewNetwork(sim, 100*time.Microsecond)
	dir := pki.NewDirectory()
	g := lineGraph(t)

	ctlKeys, _ := pki.NewKeyPair(rand.Reader, "ctl")
	dir.MustRegister(ctlKeys)
	ctl, err := New(Config{
		ID:        "ctl",
		Members:   []pki.Identity{"ctl"},
		Net:       net,
		Keys:      ctlKeys,
		Directory: dir,
		Protocol:  ProtoCentralized,
		App:       &routing.ShortestPath{Graph: g},
		Sched:     scheduler.ReversePath{},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_ = ctl

	stubs := make(map[string]*stubSwitch)
	for _, id := range []string{"s1", "s2", "s3"} {
		keys, _ := pki.NewKeyPair(rand.Reader, pki.Identity(id))
		dir.MustRegister(keys)
		st := &stubSwitch{id: id, net: net, keys: keys, members: []pki.Identity{"ctl"}}
		stubs[id] = st
		net.Register(simnet.NodeID(id), st)
	}

	swKeys, _ := pki.NewKeyPair(rand.Reader, "origin")
	dir.MustRegister(swKeys)
	ev := protocol.Event{
		ID:   openflow.MsgID{Origin: "origin", Seq: 1},
		Kind: protocol.EventFlowRequest,
		Src:  "h1", Dst: "h2",
	}
	ctl.InjectEvent(ev)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Each switch got exactly one update.
	for id, st := range stubs {
		if len(st.updates) != 1 {
			t.Fatalf("switch %s got %d updates, want 1", id, len(st.updates))
		}
	}
	if ctl.EventsDelivered != 1 || ctl.AcksReceived != 3 {
		t.Fatalf("delivered=%d acks=%d, want 1/3", ctl.EventsDelivered, ctl.AcksReceived)
	}
	// Duplicate injection is deduplicated.
	ctl.InjectEvent(ev)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if ctl.EventsDelivered != 1 {
		t.Fatal("duplicate event processed twice")
	}
}

func TestSplitNonEmpty(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a|b|c", []string{"a", "b", "c"}},
		{"|a||b|", []string{"a", "b"}},
		{"", nil},
		{"solo", []string{"solo"}},
	}
	for _, c := range cases {
		got := splitNonEmpty(c.in, '|')
		if len(got) != len(c.want) {
			t.Fatalf("splitNonEmpty(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("splitNonEmpty(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestRequestAddControllerGuards(t *testing.T) {
	sim := simnet.NewSimulator(1)
	net := simnet.NewNetwork(sim, time.Millisecond)
	dir := pki.NewDirectory()
	g := lineGraph(t)
	scheme := bls.NewScheme(pairing.Fast254())
	gk, shares, err := dkg.Run(scheme, rand.Reader, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	members := []pki.Identity{"c1", "c2", "c3", "c4"}
	ctls := make([]*Controller, len(members))
	for i, id := range members {
		keys, _ := pki.NewKeyPair(rand.Reader, id)
		dir.MustRegister(keys)
		c, err := New(Config{
			ID: id, Members: members, Net: net, Keys: keys, Directory: dir,
			Protocol: ProtoCicero, Scheme: scheme, GroupKey: gk, Share: shares[i],
			App: &routing.ShortestPath{Graph: g}, Sched: scheduler.ReversePath{},
			Bootstrap: i == 0,
		})
		if err != nil {
			t.Fatalf("New(%s): %v", id, err)
		}
		ctls[i] = c
	}
	// Non-bootstrap members may not initiate additions.
	if err := ctls[1].RequestAddController("c5"); err == nil {
		t.Error("non-bootstrap addition accepted")
	}
	// Adding an existing member is refused.
	if err := ctls[0].RequestAddController("c2"); err == nil {
		t.Error("duplicate member addition accepted")
	}
	// Removing a non-member is refused.
	if err := ctls[0].RequestRemoveController("ghost"); err == nil {
		t.Error("non-member removal accepted")
	}
}

func TestProtocolStrings(t *testing.T) {
	if ProtoCentralized.String() != "centralized" ||
		ProtoCrash.String() != "crash-tolerant" ||
		ProtoCicero.String() != "cicero" {
		t.Fatal("bad protocol names")
	}
}
