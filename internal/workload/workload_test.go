package workload

import (
	"testing"
	"time"

	"cicero/internal/topology"
)

func multiDCGraph(t *testing.T) *topology.Graph {
	t.Helper()
	cfg := topology.DefaultMultiDCConfig()
	cfg.Fabric.RacksPerPod = 4
	cfg.Fabric.SpinesPerPlane = 2
	cfg.DataCenters = 3
	cfg.PodsPerDC = 2
	g, err := topology.BuildMultiDC(cfg)
	if err != nil {
		t.Fatalf("BuildMultiDC: %v", err)
	}
	return g
}

func TestGenerateDeterministic(t *testing.T) {
	g := multiDCGraph(t)
	cfg := Config{Mix: HadoopMix(), Flows: 200, MeanInterarrival: time.Millisecond, Seed: 7}
	a, err := Generate(g, cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(g, cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateLocalityFractions(t *testing.T) {
	g := multiDCGraph(t)
	mix := WebServerMix()
	flows, err := Generate(g, Config{Mix: mix, Flows: 8000, MeanInterarrival: time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	counts := make(map[Locality]int)
	for _, f := range flows {
		counts[f.Locality]++
	}
	frac := func(l Locality) float64 { return float64(counts[l]) / float64(len(flows)) }
	within := func(got, want, tol float64) bool { return got > want-tol && got < want+tol }
	if !within(frac(InterPod), mix.PInterPod, 0.03) {
		t.Errorf("inter-pod fraction %.3f, want ~%.3f", frac(InterPod), mix.PInterPod)
	}
	if !within(frac(InterDC), mix.PInterDC, 0.03) {
		t.Errorf("inter-dc fraction %.3f, want ~%.3f", frac(InterDC), mix.PInterDC)
	}
	if !within(frac(IntraRack), mix.PIntraRack, 0.03) {
		t.Errorf("intra-rack fraction %.3f, want ~%.3f", frac(IntraRack), mix.PIntraRack)
	}
}

func TestGenerateArrivalsMonotone(t *testing.T) {
	g := multiDCGraph(t)
	flows, err := Generate(g, Config{Mix: HadoopMix(), Flows: 500, MeanInterarrival: 100 * time.Microsecond, Seed: 3})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var prev time.Duration
	for _, f := range flows {
		if f.Start < prev {
			t.Fatal("arrival times not monotone")
		}
		prev = f.Start
	}
	// Mean inter-arrival roughly matches the Poisson parameter.
	mean := float64(flows[len(flows)-1].Start) / float64(len(flows))
	want := float64(100 * time.Microsecond)
	if mean < 0.7*want || mean > 1.3*want {
		t.Errorf("mean interarrival %.0fns, want ~%.0fns", mean, want)
	}
}

func TestGenerateDegradesLocalityOnSmallTopology(t *testing.T) {
	// Single pod: inter-DC and inter-pod flows must degrade gracefully.
	cfg := topology.DefaultFabricConfig()
	cfg.RacksPerPod = 4
	g, err := topology.BuildSinglePod(cfg)
	if err != nil {
		t.Fatalf("BuildSinglePod: %v", err)
	}
	flows, err := Generate(g, Config{Mix: WebServerMix(), Flows: 500, MeanInterarrival: time.Millisecond, Seed: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, f := range flows {
		if f.Locality == InterDC || f.Locality == InterPod {
			t.Fatalf("flow %d has impossible locality %v on single pod", f.ID, f.Locality)
		}
		if _, ok := g.Node(f.Src); !ok {
			t.Fatalf("unknown src %s", f.Src)
		}
		if _, ok := g.Node(f.Dst); !ok {
			t.Fatalf("unknown dst %s", f.Dst)
		}
	}
}

func TestGenerateSizesPositiveAndExponential(t *testing.T) {
	g := multiDCGraph(t)
	mix := HadoopMix()
	flows, err := Generate(g, Config{Mix: mix, Flows: 4000, MeanInterarrival: time.Millisecond, Seed: 11})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var sum float64
	count := 0
	for _, f := range flows {
		if f.SizeKB <= 0 {
			t.Fatalf("flow %d has size %.2f", f.ID, f.SizeKB)
		}
		if f.Locality == IntraRack {
			sum += f.SizeKB
			count++
		}
	}
	mean := sum / float64(count)
	want := mix.SizeKB[IntraRack]
	if mean < 0.8*want || mean > 1.2*want {
		t.Errorf("intra-rack mean size %.0f kB, want ~%.0f kB", mean, want)
	}
}

func TestGenerateValidation(t *testing.T) {
	g := multiDCGraph(t)
	if _, err := Generate(g, Config{Mix: HadoopMix(), Flows: 0, MeanInterarrival: time.Millisecond}); err == nil {
		t.Error("Flows=0 accepted")
	}
	if _, err := Generate(g, Config{Mix: HadoopMix(), Flows: 10, MeanInterarrival: 0}); err == nil {
		t.Error("MeanInterarrival=0 accepted")
	}
	empty := topology.NewGraph()
	if _, err := Generate(empty, Config{Mix: HadoopMix(), Flows: 10, MeanInterarrival: time.Millisecond}); err == nil {
		t.Error("hostless topology accepted")
	}
}

func TestMixFor(t *testing.T) {
	if _, err := MixFor(Hadoop); err != nil {
		t.Error(err)
	}
	if _, err := MixFor(WebServer); err != nil {
		t.Error(err)
	}
	if _, err := MixFor(Class(99)); err == nil {
		t.Error("unknown class accepted")
	}
}
