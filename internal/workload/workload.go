// Package workload generates the Facebook-characterized traffic the paper
// evaluates with (Roy et al., "Inside the social network's (datacenter)
// network", SIGCOMM '15): Hadoop MapReduce and web-server flow mixes with
// Poisson arrivals, per-locality flow sizes, and the locality fractions
// the Cicero paper reports (§6.3: Hadoop 5.8% multi-domain within a pod,
// 3.3%/2.5% crossing pods/data centers; web server 31.6%, 15.7%/15.9%).
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cicero/internal/topology"
)

// Class selects a traffic mix.
type Class int

// Traffic classes. Start at 1 so the zero value is invalid.
const (
	Hadoop Class = iota + 1
	WebServer
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Hadoop:
		return "hadoop"
	case WebServer:
		return "webserver"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Locality classifies a flow's span.
type Locality int

// Localities. Start at 1 so the zero value is invalid.
const (
	IntraRack Locality = iota + 1
	InterRack          // same pod, different rack
	InterPod           // same data center, different pod
	InterDC
)

// String names the locality.
func (l Locality) String() string {
	switch l {
	case IntraRack:
		return "intra-rack"
	case InterRack:
		return "inter-rack"
	case InterPod:
		return "inter-pod"
	case InterDC:
		return "inter-dc"
	default:
		return fmt.Sprintf("locality(%d)", int(l))
	}
}

// Flow is one network flow to complete.
type Flow struct {
	ID       uint64
	Src      string
	Dst      string
	SizeKB   float64
	Start    time.Duration
	Locality Locality
}

// Mix describes a traffic class: locality probabilities (summing to 1)
// and mean flow sizes per locality in kilobytes.
type Mix struct {
	Class Class
	// Fractions of flows per locality.
	PIntraRack, PInterRack, PInterPod, PInterDC float64
	// Mean flow size per locality (kB), exponentially distributed.
	SizeKB map[Locality]float64
}

// HadoopMix returns the Hadoop traffic mix: overwhelmingly rack- and
// pod-local (99.8% of Hadoop traffic stays in-cluster per Roy et al.),
// with the cross-pod/cross-DC fractions the paper reports.
func HadoopMix() Mix {
	return Mix{
		Class:      Hadoop,
		PIntraRack: 0.884,
		PInterRack: 0.058,
		PInterPod:  0.033,
		PInterDC:   0.025,
		SizeKB: map[Locality]float64{
			IntraRack: 2048,
			InterRack: 1024,
			InterPod:  512,
			InterDC:   256,
		},
	}
}

// WebServerMix returns the web-server mix: much less rack-local, with the
// paper's 15.7% inter-pod / 15.9% inter-DC fractions.
func WebServerMix() Mix {
	return Mix{
		Class:      WebServer,
		PIntraRack: 0.368,
		PInterRack: 0.316,
		PInterPod:  0.157,
		PInterDC:   0.159,
		SizeKB: map[Locality]float64{
			IntraRack: 256,
			InterRack: 192,
			InterPod:  128,
			InterDC:   64,
		},
	}
}

// MixFor returns the mix for a class.
func MixFor(c Class) (Mix, error) {
	switch c {
	case Hadoop:
		return HadoopMix(), nil
	case WebServer:
		return WebServerMix(), nil
	default:
		return Mix{}, fmt.Errorf("workload: unknown class %d", c)
	}
}

// hostIndex organizes a topology's hosts hierarchically for locality-aware
// sampling.
type hostIndex struct {
	// byRack[dc][pod][rack] lists host ids.
	byRack map[int]map[int]map[int][]string
	dcs    []int
}

// buildHostIndex groups the graph's hosts.
func buildHostIndex(g *topology.Graph) (*hostIndex, error) {
	idx := &hostIndex{byRack: make(map[int]map[int]map[int][]string)}
	for _, n := range g.Nodes() {
		if n.Kind != topology.KindHost {
			continue
		}
		pods, ok := idx.byRack[n.DC]
		if !ok {
			pods = make(map[int]map[int][]string)
			idx.byRack[n.DC] = pods
			idx.dcs = append(idx.dcs, n.DC)
		}
		racks, ok := pods[n.Pod]
		if !ok {
			racks = make(map[int][]string)
			pods[n.Pod] = racks
		}
		racks[n.Rack] = append(racks[n.Rack], n.ID)
	}
	if len(idx.dcs) == 0 {
		return nil, errors.New("workload: topology has no hosts")
	}
	sort.Ints(idx.dcs)
	return idx, nil
}

// sortedKeys returns a map's int keys in order (deterministic sampling).
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Config parametrizes a generation run.
type Config struct {
	Mix   Mix
	Flows int
	// MeanInterarrival is the Poisson process's mean gap between flow
	// arrivals.
	MeanInterarrival time.Duration
	// Seed makes generation deterministic.
	Seed int64
}

// Generate produces a deterministic flow trace over the topology's hosts.
// Localities that the topology cannot express (e.g. inter-DC on a single
// pod) degrade to the widest available locality.
func Generate(g *topology.Graph, cfg Config) ([]Flow, error) {
	if cfg.Flows <= 0 {
		return nil, fmt.Errorf("workload: Flows must be positive, got %d", cfg.Flows)
	}
	if cfg.MeanInterarrival <= 0 {
		return nil, fmt.Errorf("workload: MeanInterarrival must be positive, got %v", cfg.MeanInterarrival)
	}
	idx, err := buildHostIndex(g)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	flows := make([]Flow, 0, cfg.Flows)
	var clock time.Duration
	for i := 0; i < cfg.Flows; i++ {
		clock += time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		loc := sampleLocality(rng, cfg.Mix)
		src, dst, actual := idx.samplePair(rng, loc)
		mean := cfg.Mix.SizeKB[actual]
		if mean <= 0 {
			mean = 64
		}
		size := rng.ExpFloat64() * mean
		if size < 1 {
			size = 1
		}
		flows = append(flows, Flow{
			ID:       uint64(i + 1),
			Src:      src,
			Dst:      dst,
			SizeKB:   size,
			Start:    clock,
			Locality: actual,
		})
	}
	return flows, nil
}

// sampleLocality draws a locality from the mix.
func sampleLocality(rng *rand.Rand, mix Mix) Locality {
	x := rng.Float64()
	switch {
	case x < mix.PIntraRack:
		return IntraRack
	case x < mix.PIntraRack+mix.PInterRack:
		return InterRack
	case x < mix.PIntraRack+mix.PInterRack+mix.PInterPod:
		return InterPod
	default:
		return InterDC
	}
}

// samplePair picks (src, dst) hosts realizing the locality, degrading to
// what the topology offers. It returns the locality actually realized.
func (idx *hostIndex) samplePair(rng *rand.Rand, want Locality) (string, string, Locality) {
	// Degrade wishes the topology cannot satisfy.
	if want == InterDC && len(idx.dcs) < 2 {
		want = InterPod
	}
	dc := idx.dcs[rng.Intn(len(idx.dcs))]
	pods := sortedKeys(idx.byRack[dc])
	if want == InterPod && len(pods) < 2 {
		want = InterRack
	}
	pod := pods[rng.Intn(len(pods))]
	racks := sortedKeys(idx.byRack[dc][pod])
	if want == InterRack && len(racks) < 2 {
		want = IntraRack
	}

	pick := func(dc, pod, rack int) string {
		hosts := idx.byRack[dc][pod][rack]
		return hosts[rng.Intn(len(hosts))]
	}
	switch want {
	case IntraRack:
		rack := racks[rng.Intn(len(racks))]
		hosts := idx.byRack[dc][pod][rack]
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		// With one aggregate host per rack, an intra-rack flow never
		// leaves the ToR; keep src==dst acceptable (no updates needed).
		return src, dst, IntraRack
	case InterRack:
		ri := rng.Intn(len(racks))
		rj := rng.Intn(len(racks) - 1)
		if rj >= ri {
			rj++
		}
		return pick(dc, pod, racks[ri]), pick(dc, pod, racks[rj]), InterRack
	case InterPod:
		pi := rng.Intn(len(pods))
		pj := rng.Intn(len(pods) - 1)
		if pj >= pi {
			pj++
		}
		srcRacks := sortedKeys(idx.byRack[dc][pods[pi]])
		dstRacks := sortedKeys(idx.byRack[dc][pods[pj]])
		return pick(dc, pods[pi], srcRacks[rng.Intn(len(srcRacks))]),
			pick(dc, pods[pj], dstRacks[rng.Intn(len(dstRacks))]), InterPod
	default: // InterDC
		di := rng.Intn(len(idx.dcs))
		dj := rng.Intn(len(idx.dcs) - 1)
		if dj >= di {
			dj++
		}
		srcDC, dstDC := idx.dcs[di], idx.dcs[dj]
		srcPods := sortedKeys(idx.byRack[srcDC])
		dstPods := sortedKeys(idx.byRack[dstDC])
		srcPod := srcPods[rng.Intn(len(srcPods))]
		dstPod := dstPods[rng.Intn(len(dstPods))]
		srcRacks := sortedKeys(idx.byRack[srcDC][srcPod])
		dstRacks := sortedKeys(idx.byRack[dstDC][dstPod])
		return pick(srcDC, srcPod, srcRacks[rng.Intn(len(srcRacks))]),
			pick(dstDC, dstPod, dstRacks[rng.Intn(len(dstRacks))]), InterDC
	}
}
