package livenet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cicero/internal/bft"
	"cicero/internal/fabric"
	"cicero/internal/protocol"
)

// waitFor polls cond until it holds or the deadline passes. Live backends
// are nondeterministic, so tests assert convergence, not instants.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestInProcSerialExecution verifies the per-node serial contract: a
// handler mutating unguarded state must be race-free under -race even
// when many goroutines send concurrently.
func TestInProcSerialExecution(t *testing.T) {
	p := NewInProc(nil)
	defer p.Close()
	count := 0 // deliberately not atomic: serial execution must protect it
	p.Register("n1", fabric.HandlerFunc(func(from fabric.NodeID, msg fabric.Message) {
		count++
	}))
	const senders, per = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			from := fabric.NodeID(fmt.Sprintf("src%d", s))
			for i := 0; i < per; i++ {
				p.Send(from, "n1", i, 8)
			}
		}(s)
	}
	wg.Wait()
	var got int
	waitFor(t, 5*time.Second, func() bool {
		p.InvokeWait("n1", func() { got = count })
		return got == senders*per
	}, "all messages delivered")
	st := p.Stats()
	if st.Sent != senders*per || st.Delivered != senders*per {
		t.Fatalf("stats: %+v", st)
	}
}

// TestInProcStrictCodec verifies strict mode round-trips messages through
// the wire codec in flight, and rejects unregistered types.
func TestInProcStrictCodec(t *testing.T) {
	p := NewInProc(protocol.NewWireCodec(nil))
	defer p.Close()
	var mu sync.Mutex
	var got []fabric.Message
	p.Register("n1", fabric.HandlerFunc(func(from fabric.NodeID, msg fabric.Message) {
		mu.Lock()
		got = append(got, msg)
		mu.Unlock()
	}))
	p.Send("n0", "n1", protocol.MsgHeartbeat{From: "c1", Seq: 9}, 64)
	p.Send("n0", "n1", struct{ X int }{1}, 64) // not wire-encodable: dropped
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	}, "heartbeat delivery")
	mu.Lock()
	hb, ok := got[0].(protocol.MsgHeartbeat)
	mu.Unlock()
	if !ok || hb.Seq != 9 || hb.From != "c1" {
		t.Fatalf("got %#v", got[0])
	}
	if st := p.Stats(); st.DroppedUnknown != 1 || st.Bytes == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestInProcFaults verifies the crash/partition drop rules and timer
// suppression.
func TestInProcFaults(t *testing.T) {
	p := NewInProc(nil)
	defer p.Close()
	deliveries := make(chan fabric.NodeID, 16)
	for _, id := range []fabric.NodeID{"a", "b", "c"} {
		id := id
		p.Register(id, fabric.HandlerFunc(func(fabric.NodeID, fabric.Message) {
			deliveries <- id
		}))
	}
	p.Crash("b")
	p.Partition("a", "c")
	p.Send("a", "b", 1, 8) // dropped: crashed
	p.Send("a", "c", 1, 8) // dropped: partitioned
	p.Send("c", "a", 1, 8) // dropped: partition is bidirectional
	p.Send("b", "a", 1, 8) // delivered: crash only blocks inbound
	if got := <-deliveries; got != "a" {
		t.Fatalf("delivered to %s", got)
	}
	timerRan := make(chan struct{})
	p.After("b", time.Millisecond, func() { close(timerRan) }) // suppressed
	p.Restart("b")
	p.Heal("a", "c")
	p.Send("a", "b", 2, 8)
	p.Send("a", "c", 2, 8)
	for i := 0; i < 2; i++ {
		<-deliveries
	}
	select {
	case <-timerRan:
		t.Fatal("timer ran on a crashed node")
	default:
	}
	st := p.Stats()
	if st.DroppedCrash != 1 || st.DroppedPartition != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestTCPRoundTrip sends protocol messages across real sockets and checks
// delivery, sender identity, and wire accounting.
func TestTCPRoundTrip(t *testing.T) {
	f, err := NewTCP(protocol.NewWireCodec(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var mu sync.Mutex
	byFrom := make(map[fabric.NodeID]int)
	f.Register("s1", fabric.HandlerFunc(func(from fabric.NodeID, msg fabric.Message) {
		if _, ok := msg.(protocol.MsgHeartbeat); !ok {
			t.Errorf("unexpected message %T", msg)
		}
		mu.Lock()
		byFrom[from]++
		mu.Unlock()
	}))
	f.Register("c1", fabric.HandlerFunc(func(fabric.NodeID, fabric.Message) {}))
	f.Register("c2", fabric.HandlerFunc(func(fabric.NodeID, fabric.Message) {}))
	if f.Addr("s1") == "" {
		t.Fatal("no listen address for s1")
	}
	const per = 50
	for i := 0; i < per; i++ {
		f.Send("c1", "s1", protocol.MsgHeartbeat{From: "c1", Seq: uint64(i)}, 0)
		f.Send("c2", "s1", protocol.MsgHeartbeat{From: "c2", Seq: uint64(i)}, 0)
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return byFrom["c1"] == per && byFrom["c2"] == per
	}, "tcp deliveries")
	st := f.Stats()
	if st.Bytes == 0 || st.Delivered != 2*per {
		t.Fatalf("stats: %+v", st)
	}
}

// TestTCPReconnect breaks the cached connection under the sender and
// checks the next Send transparently redials.
func TestTCPReconnect(t *testing.T) {
	f, err := NewTCP(protocol.NewWireCodec(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := make(chan uint64, 4)
	f.Register("s1", fabric.HandlerFunc(func(_ fabric.NodeID, msg fabric.Message) {
		got <- msg.(protocol.MsgHeartbeat).Seq
	}))
	f.Send("c1", "s1", protocol.MsgHeartbeat{Seq: 1}, 0)
	if seq := <-got; seq != 1 {
		t.Fatalf("first delivery: seq %d", seq)
	}
	// Sever the cached connection out from under the link's writer.
	l, err := f.link("c1", "s1")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return l.currentConn() != nil },
		"link to establish a connection")
	l.currentConn().Close()
	// The next send hits the dead socket and must reconnect. A close is
	// not always synchronously visible to the first write (the kernel can
	// buffer it), so allow a retry send.
	waitFor(t, 5*time.Second, func() bool {
		f.Send("c1", "s1", protocol.MsgHeartbeat{Seq: 2}, 0)
		select {
		case <-got:
			return true
		default:
			time.Sleep(10 * time.Millisecond)
			return false
		}
	}, "delivery after reconnect")
}

// TestTCPReconnectRacesPartitionHeal is the regression test for a
// reconnect racing a partition heal: the link's connection dies while
// the pair is partitioned (so the writer's redial overlaps the logical
// fault window), and delivery must resume promptly once the partition
// heals — no stale cached connection, no breaker stuck open past the
// heal.
func TestTCPReconnectRacesPartitionHeal(t *testing.T) {
	res := DefaultResilience()
	res.DialTimeout = 200 * time.Millisecond
	res.Backoff = Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2, Jitter: 0.5}
	res.BreakerThreshold = 3
	res.BreakerCooldown = 30 * time.Millisecond
	f, err := NewTCPWithResilience(protocol.NewWireCodec(nil), res)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var delivered atomic.Uint64
	f.Register("s1", fabric.HandlerFunc(func(fabric.NodeID, fabric.Message) {
		delivered.Add(1)
	}))

	stop := make(chan struct{})
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		var seq uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			f.Send("c1", "s1", protocol.MsgHeartbeat{From: "c1", Seq: seq}, 0)
			time.Sleep(time.Millisecond)
		}
	}()
	defer func() {
		close(stop)
		<-senderDone
	}()

	waitFor(t, 5*time.Second, func() bool { return delivered.Load() > 10 },
		"initial deliveries")

	// Partition, then sever the live socket mid-window so the writer's
	// reconnect machinery runs while the logical fault is still up.
	f.Partition("c1", "s1")
	atPartition := f.Stats().DroppedPartition
	waitFor(t, 5*time.Second, func() bool {
		return f.Stats().DroppedPartition > atPartition+5
	}, "sends to drop during the partition")
	l, err := f.link("c1", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if conn := l.currentConn(); conn != nil {
		conn.Close()
	}

	f.Heal("c1", "s1")
	atHeal := delivered.Load()
	waitFor(t, 10*time.Second, func() bool { return delivered.Load() > atHeal+10 },
		"delivery to resume after the heal")
}

// TestBFTOverInProc runs a real 4-replica Byzantine atomic broadcast on
// the in-process backend — the fabric transport adapter, live mailboxes,
// wall-clock timers, and the strict wire codec, all under -race — and
// checks every replica delivers the same payloads in the same order.
func TestBFTOverInProc(t *testing.T) {
	fab := NewInProc(protocol.NewWireCodec(nil))
	defer fab.Close()

	const n = 4
	nodeOf := func(id bft.ReplicaID) fabric.NodeID {
		return fabric.NodeID(fmt.Sprintf("r%d", id))
	}
	ids := make([]bft.ReplicaID, n)
	for i := range ids {
		ids[i] = bft.ReplicaID(i + 1)
	}

	replicas := make(map[fabric.NodeID]*bft.Replica, n)
	delivered := make(map[fabric.NodeID][]string, n)
	var mu sync.Mutex // guards delivered across test-side reads

	for _, id := range ids {
		id := id
		self := nodeOf(id)
		rep, err := bft.NewReplica(bft.Config{
			ID:       id,
			Replicas: ids,
			Mode:     bft.ModeByzantine,
			Transport: &bft.FabricTransport{
				Fab:  fab,
				Self: self,
				Peer: func(to bft.ReplicaID) (fabric.NodeID, bool) {
					if int(to) < 1 || int(to) > n {
						return "", false
					}
					return nodeOf(to), true
				},
			},
			Timer: func(d time.Duration, fn func()) { fab.After(self, d, fn) },
			Deliver: func(seq uint64, payload []byte) {
				mu.Lock()
				delivered[self] = append(delivered[self], string(payload))
				mu.Unlock()
			},
			ViewChangeTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas[self] = rep
		fab.Register(self, fabric.HandlerFunc(func(from fabric.NodeID, msg fabric.Message) {
			var fromID bft.ReplicaID
			if _, err := fmt.Sscanf(string(from), "r%d", &fromID); err != nil {
				t.Errorf("bad sender id %q", from)
				return
			}
			rep.Handle(fromID, msg)
		}))
	}

	const payloads = 20
	for i := 0; i < payloads; i++ {
		// Submit through the replica's own serial context, as the control
		// plane does; rotate the submitting replica.
		self := nodeOf(ids[i%n])
		rep := replicas[self]
		payload := []byte(fmt.Sprintf("op-%02d", i))
		fab.Invoke(self, func() { rep.Submit(payload) })
	}

	waitFor(t, 20*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, id := range ids {
			if len(delivered[nodeOf(id)]) < payloads {
				return false
			}
		}
		return true
	}, "all replicas delivering all payloads")

	mu.Lock()
	defer mu.Unlock()
	ref := delivered[nodeOf(ids[0])]
	for _, id := range ids[1:] {
		got := delivered[nodeOf(id)]
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("replica %d diverges at %d: %q vs %q", id, i, got[i], ref[i])
			}
		}
	}
	if len(ref) != payloads {
		t.Fatalf("delivered %d payloads, want %d", len(ref), payloads)
	}
}
