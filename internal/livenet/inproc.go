package livenet

import (
	"time"

	"cicero/internal/fabric"
)

// InProc is the in-process live backend: messages hop between mailbox
// goroutines directly, with no real wire. It is the fastest way to run
// the protocol as a genuinely concurrent system (every node on its own
// goroutine, wall-clock timers) and is what the -race live smoke tests
// exercise.
type InProc struct {
	base
	codec Codec
}

var (
	_ fabric.Fabric        = (*InProc)(nil)
	_ fabric.FaultInjector = (*InProc)(nil)
)

// NewInProc builds an in-process fabric. A non-nil codec puts the backend
// in strict mode: every message is encoded and re-decoded in flight, so
// anything that would not survive a real wire fails here first, in the
// cheap backend. A nil codec passes messages by value.
func NewInProc(codec Codec) *InProc {
	return &InProc{base: newBase(), codec: codec}
}

// Send delivers msg to the destination mailbox, subject to the datagram
// drop rules and the chaos fault filter (fire-and-forget form).
func (p *InProc) Send(from, to fabric.NodeID, msg fabric.Message, size int) {
	_ = p.SendErr(from, to, msg, size)
}

// SendErr is Send with a typed verdict: it fails fast (never blocks) with
// ErrNodeCrashed, ErrPartitioned, ErrUnknownNode, ErrFabricClosed,
// ErrInjectedDrop, or ErrEncode when the message will not be delivered.
func (p *InProc) SendErr(from, to fabric.NodeID, msg fabric.Message, size int) error {
	n, err := p.admit(from, to)
	if err != nil {
		return err
	}
	msg, copies, delay, err := p.inject(from, to, msg, size)
	if err != nil {
		return err
	}
	if p.codec != nil {
		data, err := p.codec.Encode(msg)
		if err != nil {
			p.st.droppedUnknown.Add(1)
			return ErrEncode
		}
		decoded, err := p.codec.Decode(data)
		if err != nil {
			p.st.droppedUnknown.Add(1)
			return ErrEncode
		}
		msg = decoded
		p.st.bytes.Add(uint64(copies) * uint64(len(data)))
	} else {
		p.st.bytes.Add(uint64(copies) * uint64(size))
	}
	deliver := msg
	for i := 0; i < copies; i++ {
		if delay > 0 {
			// An injected delay re-checks crash state at delivery time,
			// like simnet: the destination may have crashed meanwhile.
			time.AfterFunc(delay, func() {
				if p.Crashed(to) {
					p.st.droppedCrash.Add(1)
					return
				}
				n.enqueue(func() {
					p.st.delivered.Add(1)
					n.handler().HandleMessage(from, deliver)
				})
			})
			continue
		}
		n.enqueue(func() {
			p.st.delivered.Add(1)
			n.handler().HandleMessage(from, deliver)
		})
	}
	return nil
}

// Close shuts down every mailbox goroutine. Sends after Close drop.
func (p *InProc) Close() { p.closeNodes() }
