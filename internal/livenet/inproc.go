package livenet

import "cicero/internal/fabric"

// InProc is the in-process live backend: messages hop between mailbox
// goroutines directly, with no real wire. It is the fastest way to run
// the protocol as a genuinely concurrent system (every node on its own
// goroutine, wall-clock timers) and is what the -race live smoke tests
// exercise.
type InProc struct {
	base
	codec Codec
}

var _ fabric.Fabric = (*InProc)(nil)

// NewInProc builds an in-process fabric. A non-nil codec puts the backend
// in strict mode: every message is encoded and re-decoded in flight, so
// anything that would not survive a real wire fails here first, in the
// cheap backend. A nil codec passes messages by value.
func NewInProc(codec Codec) *InProc {
	return &InProc{base: newBase(), codec: codec}
}

// Send delivers msg to the destination mailbox, subject to the datagram
// drop rules.
func (p *InProc) Send(from, to fabric.NodeID, msg fabric.Message, size int) {
	n, ok := p.admit(from, to)
	if !ok {
		return
	}
	if p.codec != nil {
		data, err := p.codec.Encode(msg)
		if err != nil {
			p.st.droppedUnknown.Add(1)
			return
		}
		decoded, err := p.codec.Decode(data)
		if err != nil {
			p.st.droppedUnknown.Add(1)
			return
		}
		msg = decoded
		p.st.bytes.Add(uint64(len(data)))
	} else {
		p.st.bytes.Add(uint64(size))
	}
	deliver := msg
	n.enqueue(func() {
		p.st.delivered.Add(1)
		n.handler().HandleMessage(from, deliver)
	})
}

// Close shuts down every mailbox goroutine. Sends after Close drop.
func (p *InProc) Close() { p.closeNodes() }
