package livenet

import "sync/atomic"

// LamportClock is the per-process logical clock the multi-process
// deployment threads through every TCP frame. Each process ticks the
// clock on local events (sends, trace records) and observes the sender's
// value on every delivery, so any event that causally follows another —
// across any number of processes — carries a strictly larger timestamp.
// The cross-process trace merge tool (cmd/cicero-trace) sorts on these
// values to reconstruct one coherent timeline from per-process trace
// files.
type LamportClock struct {
	v atomic.Uint64
}

// NewLamportClock returns a clock at zero.
func NewLamportClock() *LamportClock { return &LamportClock{} }

// Tick advances the clock for a local event and returns the new value.
func (c *LamportClock) Tick() uint64 { return c.v.Add(1) }

// Observe merges a remote timestamp: the clock jumps to
// max(local, remote) + 1 and returns the new value. It is called for
// every inbound frame before the message reaches its handler.
func (c *LamportClock) Observe(remote uint64) uint64 {
	for {
		cur := c.v.Load()
		next := cur + 1
		if remote >= cur {
			next = remote + 1
		}
		if c.v.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// Now reads the current value without advancing it.
func (c *LamportClock) Now() uint64 { return c.v.Load() }
