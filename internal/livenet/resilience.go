package livenet

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Typed send errors. Send on the fabric interface stays fire-and-forget
// (datagram semantics), but both live backends also expose SendErr, which
// fails fast with one of these instead of blocking or silently dropping.
var (
	// ErrFabricClosed means the fabric has been Closed.
	ErrFabricClosed = errors.New("livenet: fabric closed")
	// ErrNodeCrashed means the destination is crash-faulted.
	ErrNodeCrashed = errors.New("livenet: destination node crashed")
	// ErrPartitioned means the from -> to link is partitioned.
	ErrPartitioned = errors.New("livenet: link partitioned")
	// ErrUnknownNode means the destination was never registered (or, on
	// TCP, has no listener).
	ErrUnknownNode = errors.New("livenet: unknown destination node")
	// ErrInjectedDrop means the chaos fault filter dropped the message.
	ErrInjectedDrop = errors.New("livenet: message dropped by fault filter")
	// ErrEncode means the message failed to encode (or re-decode) with the
	// wire codec.
	ErrEncode = errors.New("livenet: message failed wire codec")
	// ErrPeerUnreachable means the per-peer circuit breaker is open: the
	// peer's transport has failed repeatedly and the cooldown has not
	// elapsed, so the send fails fast instead of burning a dial timeout.
	ErrPeerUnreachable = errors.New("livenet: peer unreachable (circuit breaker open)")
	// ErrSendQueueFull means the peer's bounded outbound queue is full
	// (the writer cannot drain as fast as the node produces).
	ErrSendQueueFull = errors.New("livenet: peer send queue full")
)

// Backoff is a bounded exponential backoff schedule with multiplicative
// jitter. Attempt 1 waits ~Base, attempt k waits ~Base·Factor^(k-1),
// capped at Max; each wait is then scaled by a uniform factor in
// [1-Jitter, 1] so concurrent retriers decorrelate.
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Factor float64
	Jitter float64 // fraction in [0, 1)
}

// Delay returns the wait before retry attempt k (k >= 1). rng supplies
// uniform [0,1) randomness; nil means no jitter.
func (b Backoff) Delay(attempt int, rng func() float64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if time.Duration(d) >= b.Max {
			d = float64(b.Max)
			break
		}
	}
	if time.Duration(d) > b.Max {
		d = float64(b.Max)
	}
	if b.Jitter > 0 && rng != nil {
		d *= 1 - b.Jitter*rng()
	}
	return time.Duration(d)
}

// Resilience configures the TCP backend's retry/timeout/backoff layer.
type Resilience struct {
	// DialTimeout bounds one dial attempt.
	DialTimeout time.Duration
	// WriteTimeout is the per-frame write deadline.
	WriteTimeout time.Duration
	// MaxAttempts bounds transmission attempts per frame (first try plus
	// retries); the frame is dropped when the budget is exhausted.
	MaxAttempts int
	// Backoff is the wait schedule between attempts.
	Backoff Backoff
	// QueueLen bounds the per-peer outbound queue; SendErr fails fast with
	// ErrSendQueueFull when it is full.
	QueueLen int
	// BreakerThreshold is the number of consecutive dial failures that
	// trips the per-peer circuit breaker.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before it
	// lets one half-open probe through.
	BreakerCooldown time.Duration
}

// DefaultResilience returns the settings the live experiments use: fast
// enough for localhost benchmarks, patient enough to ride out a crashed
// peer's restart.
func DefaultResilience() Resilience {
	return Resilience{
		DialTimeout:  1 * time.Second,
		WriteTimeout: 2 * time.Second,
		MaxAttempts:  4,
		Backoff: Backoff{
			Base:   5 * time.Millisecond,
			Max:    250 * time.Millisecond,
			Factor: 2,
			Jitter: 0.5,
		},
		QueueLen:         4096,
		BreakerThreshold: 3,
		BreakerCooldown:  200 * time.Millisecond,
	}
}

// withDefaults fills zero fields from DefaultResilience.
func (r Resilience) withDefaults() Resilience {
	d := DefaultResilience()
	if r.DialTimeout <= 0 {
		r.DialTimeout = d.DialTimeout
	}
	if r.WriteTimeout <= 0 {
		r.WriteTimeout = d.WriteTimeout
	}
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = d.MaxAttempts
	}
	if r.Backoff.Base <= 0 {
		r.Backoff = d.Backoff
	}
	if r.QueueLen <= 0 {
		r.QueueLen = d.QueueLen
	}
	if r.BreakerThreshold <= 0 {
		r.BreakerThreshold = d.BreakerThreshold
	}
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = d.BreakerCooldown
	}
	return r
}

// Circuit-breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-peer circuit breaker: after threshold consecutive
// transport failures it opens (sends fail fast), and after the cooldown
// it admits a single half-open probe — success closes it, failure
// re-opens it for another cooldown.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	onTrip    func()

	state    int
	fails    int
	openedAt time.Time
}

func newBreaker(threshold int, cooldown time.Duration, onTrip func()) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, onTrip: onTrip}
}

// Allow reports whether a transport attempt may proceed now. When the
// breaker is open and the cooldown has elapsed, the first caller becomes
// the half-open probe; concurrent callers keep failing fast until the
// probe resolves.
func (k *breaker) Allow(now time.Time) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	switch k.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(k.openedAt) >= k.cooldown {
			k.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: one probe already in flight
		return false
	}
}

// Rejecting reports (without state transitions) whether a send should
// fail fast right now. Unlike Allow it never claims the half-open probe,
// so enqueue-side checks don't consume it.
func (k *breaker) Rejecting(now time.Time) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.state == breakerOpen && now.Sub(k.openedAt) < k.cooldown
}

// Success records a working transport: the breaker closes.
func (k *breaker) Success() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.state = breakerClosed
	k.fails = 0
}

// Failure records a transport failure; enough of them (or a failed
// half-open probe) trip the breaker open.
func (k *breaker) Failure(now time.Time) {
	k.mu.Lock()
	k.fails++
	tripped := false
	if k.state == breakerHalfOpen || (k.state == breakerClosed && k.fails >= k.threshold) {
		k.state = breakerOpen
		k.openedAt = now
		tripped = true
	} else if k.state == breakerOpen {
		k.openedAt = now
	}
	k.mu.Unlock()
	if tripped && k.onTrip != nil {
		k.onTrip()
	}
}

// State returns the current state (for tests and diagnostics).
func (k *breaker) State() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.state
}

// lockedRand is a mutex-guarded rand.Rand: backoff jitter draws from it
// on writer goroutines concurrently.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform [0,1) sample.
func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}
