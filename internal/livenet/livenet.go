// Package livenet provides live (wall-clock) implementations of the
// fabric seam, so the identical controller/switch/BFT code that runs on
// the deterministic simulator also runs as a real concurrent system:
//
//   - InProc: one goroutine mailbox per node, wall-clock timers, and
//     channel-style in-process message passing. Optionally round-trips
//     every message through the wire codec so serialization bugs surface
//     in fast in-process tests.
//   - TCP: the same node runtime, with messages crossing localhost TCP
//     sockets as length-prefixed codec frames through per-peer links: a
//     bounded outbound queue, a writer goroutine with per-send deadlines
//     and bounded exponential backoff with jitter, and a circuit breaker
//     that trips after repeated dial failures and probes half-open.
//
// Both backends implement fabric.FaultInjector, so the chaos engine's
// drop/delay/duplicate/corrupt filters inject on live transports exactly
// as they do on simnet; Crash/Restart additionally model real process
// death (mailbox purge, and on TCP severed sockets plus a fresh listener
// on restart).
//
// Both backends keep the fabric's per-node serial execution contract: all
// deliveries, timer callbacks, and Invoke thunks for one node run on that
// node's single mailbox goroutine, so protocol handlers need no locking.
// Unlike the simulator there is no global event order — runs are
// concurrent and nondeterministic — which is exactly what the live
// cross-check experiments exercise (see internal/experiments/live.go).
package livenet

import (
	"sync"
	"sync/atomic"
	"time"

	"cicero/internal/fabric"
)

// Codec serializes fabric messages for a real wire. It is satisfied by
// *protocol.WireCodec; livenet depends only on this interface so the
// transport layer stays below the protocol vocabulary.
type Codec interface {
	Encode(msg fabric.Message) ([]byte, error)
	Decode(data []byte) (fabric.Message, error)
}

// node is one registered endpoint: a handler plus its serial mailbox.
type node struct {
	id   fabric.NodeID
	mu   sync.Mutex
	cond *sync.Cond
	// queue is the unbounded mailbox. Unbounded is deliberate: a bounded
	// queue would block senders, and a node sending to itself (or two
	// nodes flooding each other) could deadlock under backpressure.
	queue  []func()
	closed bool
	h      fabric.Handler
	busy   atomic.Int64 // accumulated Charge, nanoseconds
}

// enqueue appends a thunk to the mailbox (no-op after close).
func (n *node) enqueue(fn func()) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.queue = append(n.queue, fn)
	n.mu.Unlock()
	n.cond.Signal()
}

// purge discards every queued-but-unprocessed thunk: the volatile-state
// loss of a crash. Thunks already executing run to completion (the node
// "crashes" between messages, never mid-handler — the same granularity
// simnet models).
func (n *node) purge() {
	n.mu.Lock()
	n.queue = nil
	n.mu.Unlock()
}

// loop is the mailbox goroutine: it drains thunks strictly serially.
func (n *node) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		n.mu.Lock()
		for len(n.queue) == 0 && !n.closed {
			n.cond.Wait()
		}
		if n.closed {
			n.mu.Unlock()
			return
		}
		batch := n.queue
		n.queue = nil
		n.mu.Unlock()
		for _, fn := range batch {
			fn()
		}
	}
}

// handler returns the current handler (Register may replace it live).
func (n *node) handler() fabric.Handler {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.h
}

// stats is the atomic counter block behind fabric.Stats, plus the
// resilience counters live backends accumulate (retries, reconnects,
// breaker trips, crash/restart events).
type stats struct {
	sent             atomic.Uint64
	delivered        atomic.Uint64
	bytes            atomic.Uint64
	droppedCrash     atomic.Uint64
	droppedPartition atomic.Uint64
	droppedUnknown   atomic.Uint64
	droppedInjected  atomic.Uint64

	retries      atomic.Uint64
	reconnects   atomic.Uint64
	breakerTrips atomic.Uint64
	crashes      atomic.Uint64
	restarts     atomic.Uint64
}

// snapshot converts to the fabric view.
func (s *stats) snapshot() fabric.Stats {
	out := fabric.Stats{
		Sent:             s.sent.Load(),
		Delivered:        s.delivered.Load(),
		Bytes:            s.bytes.Load(),
		DroppedCrash:     s.droppedCrash.Load(),
		DroppedPartition: s.droppedPartition.Load(),
		DroppedUnknown:   s.droppedUnknown.Load(),
		DroppedInjected:  s.droppedInjected.Load(),
	}
	out.Dropped = out.DroppedCrash + out.DroppedPartition +
		out.DroppedUnknown + out.DroppedInjected
	return out
}

// ResilienceStats counts the transport-resilience events a live run saw.
// InProc only reports crash/restart events; TCP reports all of them.
type ResilienceStats struct {
	// Retries is the number of frame (re)transmission attempts beyond the
	// first — dial retries plus write retries.
	Retries uint64
	// Reconnects is the number of successful redials after a connection
	// went bad.
	Reconnects uint64
	// BreakerTrips is the number of closed -> open transitions across all
	// per-peer circuit breakers.
	BreakerTrips uint64
	// Crashes and Restarts count fault-plane crash/restart events.
	Crashes  uint64
	Restarts uint64
}

// resilience snapshots the resilience counters.
func (s *stats) resilience() ResilienceStats {
	return ResilienceStats{
		Retries:      s.retries.Load(),
		Reconnects:   s.reconnects.Load(),
		BreakerTrips: s.breakerTrips.Load(),
		Crashes:      s.crashes.Load(),
		Restarts:     s.restarts.Load(),
	}
}

// base is the node runtime shared by both live backends: registration,
// mailboxes, wall-clock timers, crash/partition state, and stats.
type base struct {
	start time.Time

	mu      sync.RWMutex
	nodes   map[fabric.NodeID]*node
	crashed map[fabric.NodeID]bool
	parts   map[[2]fabric.NodeID]bool
	closed  bool

	// fmu guards the chaos fault filter separately from the node maps so
	// hot-path sends read it with minimal contention.
	fmu    sync.RWMutex
	filter fabric.Filter

	wg sync.WaitGroup
	st stats
}

func newBase() base {
	return base{
		start:   time.Now(),
		nodes:   make(map[fabric.NodeID]*node),
		crashed: make(map[fabric.NodeID]bool),
		parts:   make(map[[2]fabric.NodeID]bool),
	}
}

// Register adds a node (starting its mailbox goroutine) or replaces an
// existing node's handler.
func (b *base) Register(id fabric.NodeID, h fabric.Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if n, ok := b.nodes[id]; ok {
		n.mu.Lock()
		n.h = h
		n.mu.Unlock()
		return
	}
	n := &node{id: id, h: h}
	n.cond = sync.NewCond(&n.mu)
	b.nodes[id] = n
	b.wg.Add(1)
	go n.loop(&b.wg)
}

// lookup returns a node if registered.
func (b *base) lookup(id fabric.NodeID) (*node, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n, ok := b.nodes[id]
	return n, ok
}

// After schedules fn on the node's mailbox after a wall-clock delay; the
// timer is suppressed if the node is crashed when it fires.
func (b *base) After(id fabric.NodeID, delay time.Duration, fn func()) {
	time.AfterFunc(delay, func() {
		if b.Crashed(id) {
			return
		}
		if n, ok := b.lookup(id); ok {
			n.enqueue(fn)
		}
	})
}

// Invoke runs fn on the node's mailbox as soon as possible (even when the
// node is crashed — drivers use it to inspect state).
func (b *base) Invoke(id fabric.NodeID, fn func()) {
	if n, ok := b.lookup(id); ok {
		n.enqueue(fn)
	}
}

// InvokeWait runs fn on the node's mailbox and blocks until it returns —
// a convenience for drivers reading node state (flow tables, counters)
// from outside the fabric. Calling it from the node's own mailbox would
// self-deadlock; it is for external drivers only.
func (b *base) InvokeWait(id fabric.NodeID, fn func()) {
	n, ok := b.lookup(id)
	if !ok {
		return
	}
	done := make(chan struct{})
	n.enqueue(func() {
		fn()
		close(done)
	})
	<-done
}

// Charge accounts CPU cost; live backends only track it (the real work
// already took real time).
func (b *base) Charge(id fabric.NodeID, cost time.Duration) {
	if n, ok := b.lookup(id); ok {
		n.busy.Add(int64(cost))
	}
}

// BusyTotal returns cumulative charged CPU time.
func (b *base) BusyTotal(id fabric.NodeID) time.Duration {
	if n, ok := b.lookup(id); ok {
		return time.Duration(n.busy.Load())
	}
	return 0
}

// Now is wall-clock time since the fabric was created.
func (b *base) Now() fabric.Time { return time.Since(b.start) }

// SetFilter installs (or, with nil, removes) the message fault filter. On
// live backends the filter runs on whatever goroutine called Send, so it
// must be safe for concurrent use.
func (b *base) SetFilter(f fabric.Filter) {
	b.fmu.Lock()
	b.filter = f
	b.fmu.Unlock()
}

// getFilter reads the current filter.
func (b *base) getFilter() fabric.Filter {
	b.fmu.RLock()
	defer b.fmu.RUnlock()
	return b.filter
}

// Crash marks a node failed: its inbound messages drop, its timers are
// suppressed until Restart, and every thunk already queued in its mailbox
// is discarded (volatile-state loss). Thunks enqueued after the crash —
// Invoke, used by drivers to inspect the wreck — still run.
func (b *base) Crash(id fabric.NodeID) {
	b.mu.Lock()
	b.crashed[id] = true
	n := b.nodes[id]
	b.mu.Unlock()
	b.st.crashes.Add(1)
	if n != nil {
		n.purge()
	}
}

// Restart clears a node's crash flag. The node restarts empty-handed: its
// pre-crash mailbox was purged, so recovery is the protocol's job (replay
// and resync), not the transport's.
func (b *base) Restart(id fabric.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.crashed[id] {
		return
	}
	delete(b.crashed, id)
	b.st.restarts.Add(1)
}

// Partition blocks messages in both directions between a and b.
func (b *base) Partition(x, y fabric.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parts[[2]fabric.NodeID{x, y}] = true
	b.parts[[2]fabric.NodeID{y, x}] = true
}

// Heal removes a partition.
func (b *base) Heal(x, y fabric.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.parts, [2]fabric.NodeID{x, y})
	delete(b.parts, [2]fabric.NodeID{y, x})
}

// PartitionOneWay blocks messages from -> to only (asymmetric fault: e.g.
// a switch's acks vanish while updates still flow in).
func (b *base) PartitionOneWay(from, to fabric.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parts[[2]fabric.NodeID{from, to}] = true
}

// HealOneWay removes a one-way partition.
func (b *base) HealOneWay(from, to fabric.NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.parts, [2]fabric.NodeID{from, to})
}

// Crashed reports the node's crash flag.
func (b *base) Crashed(id fabric.NodeID) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.crashed[id]
}

// Partitioned reports whether from -> to is blocked.
func (b *base) Partitioned(from, to fabric.NodeID) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.parts[[2]fabric.NodeID{from, to}]
}

// Stats snapshots the traffic counters.
func (b *base) Stats() fabric.Stats { return b.st.snapshot() }

// Resilience snapshots the resilience counters (retries, reconnects,
// breaker trips, crashes, restarts).
func (b *base) Resilience() ResilienceStats { return b.st.resilience() }

// admit applies the shared datagram drop rules (unknown, crashed,
// partitioned destination) and counts the send. It returns the
// destination node, or a typed error saying why the send was refused.
func (b *base) admit(from, to fabric.NodeID) (*node, error) {
	return b.admitSend(from, to, false)
}

// admitSend is admit with multi-process awareness: when remoteOK is true
// a destination that is not locally registered is admitted with a nil
// node (the caller owns a remote route to it). Crash and partition state
// still apply — they reflect this process's local view of the fault
// plane.
func (b *base) admitSend(from, to fabric.NodeID, remoteOK bool) (*node, error) {
	b.st.sent.Add(1)
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		b.st.droppedUnknown.Add(1)
		return nil, ErrFabricClosed
	}
	if b.crashed[to] {
		b.st.droppedCrash.Add(1)
		return nil, ErrNodeCrashed
	}
	if b.parts[[2]fabric.NodeID{from, to}] {
		b.st.droppedPartition.Add(1)
		return nil, ErrPartitioned
	}
	n, ok := b.nodes[to]
	if !ok {
		if remoteOK {
			return nil, nil
		}
		b.st.droppedUnknown.Add(1)
		return nil, ErrUnknownNode
	}
	return n, nil
}

// inject runs the chaos fault filter over an admitted message. It returns
// the (possibly replaced) message, the number of copies to deliver, the
// extra injected delay, and ErrInjectedDrop when the filter dropped it.
// Extra copies are counted as sent, matching simnet's accounting.
func (b *base) inject(from, to fabric.NodeID, msg fabric.Message, size int) (fabric.Message, int, time.Duration, error) {
	f := b.getFilter()
	if f == nil {
		return msg, 1, 0, nil
	}
	act := f(from, to, msg, size)
	if act.Drop {
		b.st.droppedInjected.Add(1)
		return nil, 0, 0, ErrInjectedDrop
	}
	if act.Replace != nil {
		msg = act.Replace
	}
	copies := 1 + act.Duplicates
	if act.Duplicates > 0 {
		b.st.sent.Add(uint64(act.Duplicates))
	}
	return msg, copies, act.Delay, nil
}

// closeNodes shuts every mailbox and waits for the goroutines to exit.
func (b *base) closeNodes() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	nodes := make([]*node, 0, len(b.nodes))
	for _, n := range b.nodes {
		nodes = append(nodes, n)
	}
	b.mu.Unlock()
	for _, n := range nodes {
		n.mu.Lock()
		n.closed = true
		n.mu.Unlock()
		n.cond.Signal()
	}
	b.wg.Wait()
}
