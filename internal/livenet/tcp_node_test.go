package livenet

import (
	"sync/atomic"
	"testing"
	"time"

	"cicero/internal/fabric"
	"cicero/internal/protocol"
)

// TestTCPNodeRemoteSend wires three TCP fabrics in one test process the
// way the distrib supervisor wires one per OS process: each fabric hosts
// one node and reaches the others only through its static Remotes map.
// A frame injected at C relays through B's handler to A, exercising the
// remote-address dial fallback on both hops, and each fabric's Lamport
// clock must observe the upstream clock so the merged trace order is
// causal: A's clock ends strictly ahead of the value C stamped on the
// original send.
func TestTCPNodeRemoteSend(t *testing.T) {
	codec := protocol.NewWireCodec(nil)
	newNode := func(remotes map[fabric.NodeID]string) (*TCP, *LamportClock) {
		clock := &LamportClock{}
		f, err := NewTCPNode(TCPOptions{Codec: codec, Remotes: remotes, Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		return f, clock
	}

	fa, clockA := newNode(nil)
	var gotA atomic.Uint64
	fa.Register("a", fabric.HandlerFunc(func(from fabric.NodeID, msg fabric.Message) {
		if from != "b" {
			t.Errorf("a received from %s, want b", from)
		}
		gotA.Add(1)
	}))

	fb, _ := newNode(map[fabric.NodeID]string{"a": fa.Addr("a")})
	fb.Register("b", fabric.HandlerFunc(func(from fabric.NodeID, msg fabric.Message) {
		fb.Send("b", "a", msg, 0) // relay: "a" lives in another fabric
	}))

	fc, clockC := newNode(map[fabric.NodeID]string{"b": fb.Addr("b")})
	fc.Register("c", fabric.HandlerFunc(func(fabric.NodeID, fabric.Message) {}))

	// Sends to nodes neither hosted locally nor in the remotes map must
	// fail fast, not silently vanish.
	if err := fc.SendErr("c", "a", protocol.MsgHeartbeat{Seq: 99}, 0); err != ErrUnknownNode {
		t.Fatalf("send to unmapped remote: err=%v, want ErrUnknownNode", err)
	}

	fc.Send("c", "b", protocol.MsgHeartbeat{From: "c", Seq: 1}, 0)
	atSend := clockC.Now()
	waitFor(t, 5*time.Second, func() bool { return gotA.Load() == 1 },
		"relayed delivery across three fabrics")

	// Lamport causality across process boundaries: A's clock observed a
	// chain of ticks that started at C, so it must have moved past the
	// value C held when the frame left.
	waitFor(t, 5*time.Second, func() bool { return clockA.Now() > atSend },
		"a's lamport clock to pass c's send timestamp")
	if atSend == 0 {
		t.Fatal("c's clock never ticked on send")
	}
}
