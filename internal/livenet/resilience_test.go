package livenet

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"cicero/internal/fabric"
	"cicero/internal/protocol"
)

// TestBackoffSchedule pins the deterministic (jitter-free) schedule: Base,
// Base·Factor, Base·Factor², ..., capped at Max.
func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 5 * time.Millisecond, Max: 40 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		5 * time.Millisecond,  // attempt 1
		10 * time.Millisecond, // attempt 2
		20 * time.Millisecond, // attempt 3
		40 * time.Millisecond, // attempt 4 hits the cap
		40 * time.Millisecond, // and stays there
	}
	for i, w := range want {
		if got := b.Delay(i+1, nil); got != w {
			t.Errorf("attempt %d: delay %v, want %v", i+1, got, w)
		}
	}
	// Out-of-range attempts clamp to the first step.
	if got := b.Delay(0, nil); got != want[0] {
		t.Errorf("attempt 0: delay %v, want %v", got, want[0])
	}
}

// TestBackoffJitterBounds checks jittered delays stay in
// [(1-Jitter)·step, step] and that the rng actually moves them.
func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 8 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	rng := newLockedRand(42)
	varied := false
	for attempt := 1; attempt <= 4; attempt++ {
		step := b.Delay(attempt, nil)
		lo := time.Duration(float64(step) * (1 - b.Jitter))
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt, rng.Float64)
			if d < lo || d > step {
				t.Fatalf("attempt %d: jittered delay %v outside [%v, %v]", attempt, d, lo, step)
			}
			if d != step {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("jitter never moved the delay")
	}
}

// TestBreakerStateMachine walks the circuit breaker through its full
// cycle: closed -> (threshold failures) -> open -> (cooldown) -> half-open
// probe -> failure -> open again -> (cooldown) -> probe -> success ->
// closed.
func TestBreakerStateMachine(t *testing.T) {
	var trips atomic.Uint64
	cooldown := 50 * time.Millisecond
	k := newBreaker(3, cooldown, func() { trips.Add(1) })
	now := time.Unix(1000, 0)

	// Closed: failures below the threshold keep admitting.
	k.Failure(now)
	k.Failure(now)
	if !k.Allow(now) || k.State() != breakerClosed {
		t.Fatal("breaker opened before the threshold")
	}
	// Third consecutive failure trips it.
	k.Failure(now)
	if k.State() != breakerOpen || trips.Load() != 1 {
		t.Fatalf("state=%d trips=%d after threshold failures", k.State(), trips.Load())
	}
	if k.Allow(now) || !k.Rejecting(now) {
		t.Fatal("open breaker admitted a send inside the cooldown")
	}

	// Cooldown elapsed: exactly one half-open probe gets through.
	later := now.Add(cooldown)
	if k.Rejecting(later) {
		t.Fatal("Rejecting still true after cooldown")
	}
	if !k.Allow(later) {
		t.Fatal("no half-open probe after cooldown")
	}
	if k.State() != breakerHalfOpen {
		t.Fatalf("state=%d, want half-open", k.State())
	}
	if k.Allow(later) {
		t.Fatal("second concurrent probe admitted while half-open")
	}

	// Failed probe re-opens for another cooldown.
	k.Failure(later)
	if k.State() != breakerOpen || trips.Load() != 2 {
		t.Fatalf("state=%d trips=%d after failed probe", k.State(), trips.Load())
	}

	// Successful probe after the next cooldown closes it for good.
	again := later.Add(cooldown)
	if !k.Allow(again) {
		t.Fatal("no probe after second cooldown")
	}
	k.Success()
	if k.State() != breakerClosed || !k.Allow(again) {
		t.Fatal("breaker did not close after a successful probe")
	}
	// Closing reset the failure count: one new failure must not re-trip.
	k.Failure(again)
	if k.State() != breakerClosed {
		t.Fatal("single failure after recovery re-tripped the breaker")
	}
}

// TestTCPBreakerTripsOnDeadPeer makes every dial to a peer fail (its
// listener is dead but its address is still advertised — a crashed remote
// process, from the sender's point of view) and checks the per-peer
// circuit breaker trips and sends start failing fast with
// ErrPeerUnreachable. (An explicitly Crash()ed peer never reaches the
// dial path: admit() fails fast with ErrNodeCrashed — that rule is covered
// by TestInProcFaults.)
func TestTCPBreakerTripsOnDeadPeer(t *testing.T) {
	res := DefaultResilience()
	res.DialTimeout = 50 * time.Millisecond
	res.MaxAttempts = 1
	res.Backoff = Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Factor: 2}
	res.BreakerThreshold = 2
	res.BreakerCooldown = 10 * time.Second // long: stays open for the test
	f, err := NewTCPWithResilience(protocol.NewWireCodec(nil), res)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Register("s1", fabric.HandlerFunc(func(fabric.NodeID, fabric.Message) {}))
	// Kill the listener out from under the advertised address: the node is
	// not crash-marked, so sends are admitted and hit real dial failures.
	f.lmu.Lock()
	ln := f.listeners["s1"]
	f.lmu.Unlock()
	ln.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		err := f.SendErr("c1", "s1", protocol.MsgHeartbeat{Seq: 1}, 0)
		if err == ErrPeerUnreachable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never tripped; last err: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := f.Resilience(); st.BreakerTrips == 0 {
		t.Fatalf("resilience stats show no breaker trips: %+v", st)
	}
}

// TestResilienceCountersExactOnDeadPeer pins the exact counter values the
// BENCH_live.json resilience section is built from (chaos copies
// fab.Resilience() verbatim). With MaxAttempts=1 nothing ever retries, a
// threshold of 2 against a dead listener trips the breaker exactly once,
// and a cooldown far longer than the test keeps it from re-tripping via a
// half-open probe — so every counter has one correct value, not a range.
func TestResilienceCountersExactOnDeadPeer(t *testing.T) {
	res := DefaultResilience()
	res.DialTimeout = 50 * time.Millisecond
	res.MaxAttempts = 1 // no retries: Retries must stay exactly 0
	res.Backoff = Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Factor: 2}
	res.BreakerThreshold = 2
	res.BreakerCooldown = 10 * time.Second // never half-opens during the test
	f, err := NewTCPWithResilience(protocol.NewWireCodec(nil), res)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Register("s1", fabric.HandlerFunc(func(fabric.NodeID, fabric.Message) {}))
	f.lmu.Lock()
	ln := f.listeners["s1"]
	f.lmu.Unlock()
	ln.Close()

	deadline := time.Now().Add(15 * time.Second)
	for f.SendErr("c1", "s1", protocol.MsgHeartbeat{Seq: 1}, 0) != ErrPeerUnreachable {
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := f.Resilience()
	want := ResilienceStats{BreakerTrips: 1}
	if st != want {
		t.Fatalf("resilience counters = %+v, want %+v", st, want)
	}
}

// TestResilienceCountersExactOnReconnect pins reconnect accounting: the
// first dial of a link is a connect, not a reconnect (setConn only counts
// when a connection existed before), and severing the live connection
// costs exactly one failed write (one retry) and one redial (one
// reconnect) for the next frame.
func TestResilienceCountersExactOnReconnect(t *testing.T) {
	res := DefaultResilience()
	res.DialTimeout = time.Second
	res.MaxAttempts = 3
	res.Backoff = Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Factor: 2}
	f, err := NewTCPWithResilience(protocol.NewWireCodec(nil), res)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var delivered atomic.Uint64
	f.Register("s1", fabric.HandlerFunc(func(fabric.NodeID, fabric.Message) {
		delivered.Add(1)
	}))

	f.Send("c1", "s1", protocol.MsgHeartbeat{Seq: 1}, 0)
	waitFor(t, 5*time.Second, func() bool { return delivered.Load() == 1 },
		"first delivery")
	if st := f.Resilience(); st != (ResilienceStats{}) {
		t.Fatalf("counters moved on a clean first connect: %+v", st)
	}

	// Sever the established connection out from under the link. The next
	// frame's first write fails immediately (closed conn), which is one
	// retry; the redial that follows replaces an existing connection,
	// which is one reconnect.
	l, err := f.link("c1", "s1")
	if err != nil {
		t.Fatal(err)
	}
	l.currentConn().Close()
	f.Send("c1", "s1", protocol.MsgHeartbeat{Seq: 2}, 0)
	waitFor(t, 5*time.Second, func() bool { return delivered.Load() == 2 },
		"delivery after severed connection")
	st := f.Resilience()
	want := ResilienceStats{Retries: 1, Reconnects: 1}
	if st != want {
		t.Fatalf("resilience counters = %+v, want %+v", st, want)
	}
}

// TestTCPKillPeerMidWorkload crashes the receiver in the middle of a
// steady send workload, restarts it, and requires delivery to resume: the
// retry/reconnect layer must ride out the dead listener and redial the
// reborn one.
func TestTCPKillPeerMidWorkload(t *testing.T) {
	res := DefaultResilience()
	res.DialTimeout = 200 * time.Millisecond
	res.MaxAttempts = 3
	res.Backoff = Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, Factor: 2, Jitter: 0.5}
	res.BreakerThreshold = 5
	res.BreakerCooldown = 50 * time.Millisecond
	f, err := NewTCPWithResilience(protocol.NewWireCodec(nil), res)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var delivered atomic.Uint64
	f.Register("s1", fabric.HandlerFunc(func(fabric.NodeID, fabric.Message) {
		delivered.Add(1)
	}))

	stop := make(chan struct{})
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		var seq uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			f.Send("c1", "s1", protocol.MsgHeartbeat{From: "c1", Seq: seq}, 0)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	waitFor(t, 5*time.Second, func() bool { return delivered.Load() > 10 },
		"initial deliveries")

	// Kill the peer mid-workload: listener gone, live connections severed.
	f.Crash("s1")
	atCrash := delivered.Load()
	atCrashDropped := f.Stats().DroppedCrash
	// The workload keeps hammering the dead peer; wait for the fault
	// plane to observably drop traffic instead of sleeping a fixed beat.
	waitFor(t, 5*time.Second, func() bool {
		return f.Stats().DroppedCrash > atCrashDropped+5
	}, "sends to drop against the crashed peer")

	// Restart: the node re-listens (new port); senders must redial.
	f.Restart("s1")
	waitFor(t, 15*time.Second, func() bool { return delivered.Load() > atCrash+10 },
		"delivery to resume after restart")

	close(stop)
	<-senderDone
	st := f.Resilience()
	if st.Crashes != 1 || st.Restarts != 1 {
		t.Fatalf("resilience stats: %+v", st)
	}
	t.Logf("delivered=%d (at crash %d) resilience=%+v", delivered.Load(), atCrash, st)
}

// TestInProcClosesCleanly is the goroutine-leak assertion: building a
// backend, pushing traffic and timers through it, and closing it must
// return the process to its original goroutine count — mailbox pumps,
// timer goroutines, and TCP read/accept/writer loops all terminate.
func TestInProcClosesCleanly(t *testing.T) {
	assertNoGoroutineLeak(t, func() {
		p := NewInProc(protocol.NewWireCodec(nil))
		p.Register("a", fabric.HandlerFunc(func(fabric.NodeID, fabric.Message) {}))
		p.Register("b", fabric.HandlerFunc(func(fabric.NodeID, fabric.Message) {}))
		for i := 0; i < 50; i++ {
			p.Send("a", "b", protocol.MsgHeartbeat{Seq: uint64(i)}, 0)
		}
		p.After("a", time.Millisecond, func() {})
		p.After("b", time.Hour, func() {}) // must not pin a goroutine past Close
		p.Close()
	})
}

// TestTCPClosesCleanly is the same leak assertion for the TCP backend,
// including a crashed-then-restarted node and a workload that exercises
// dial, accept, read, and writer goroutines.
func TestTCPClosesCleanly(t *testing.T) {
	assertNoGoroutineLeak(t, func() {
		f, err := NewTCP(protocol.NewWireCodec(nil))
		if err != nil {
			t.Fatal(err)
		}
		var got atomic.Uint64
		f.Register("s1", fabric.HandlerFunc(func(fabric.NodeID, fabric.Message) { got.Add(1) }))
		f.Register("s2", fabric.HandlerFunc(func(fabric.NodeID, fabric.Message) { got.Add(1) }))
		for i := 0; i < 20; i++ {
			f.Send("c1", "s1", protocol.MsgHeartbeat{Seq: uint64(i)}, 0)
			f.Send("s1", "s2", protocol.MsgHeartbeat{Seq: uint64(i)}, 0)
		}
		waitFor(t, 5*time.Second, func() bool { return got.Load() == 40 }, "tcp deliveries")
		f.Crash("s2")
		f.Restart("s2")
		f.Close()
	})
}

// assertNoGoroutineLeak runs fn and requires the goroutine count to
// return to (near) its starting point afterwards, polling briefly to let
// shutdown complete.
func assertNoGoroutineLeak(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(10 * time.Second)
	var after int
	for time.Now().Before(deadline) {
		runtime.GC() // nudge finalizers and parked goroutines
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
}
