package livenet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"cicero/internal/fabric"
)

// maxFrameBytes caps one wire frame. Legitimate Cicero messages are a few
// kilobytes (the largest carry Feldman commitment vectors); anything near
// the cap is a corrupted or hostile length prefix, and rejecting it keeps
// a bad frame from forcing a huge allocation.
const maxFrameBytes = 1 << 22

// TCP is the live backend over localhost TCP sockets. Every registered
// node gets its own listener on 127.0.0.1 (kernel-assigned port); senders
// cache one outbound connection per (from, to) pair, lazily dialed, with
// one reconnect attempt when a cached connection has gone bad. Messages
// travel as length-prefixed wire-codec frames:
//
//	[4B frame length][2B sender-id length][sender id][codec bytes]
//
// Crash and partition state is enforced at the sending fabric (both ends
// live in one process in the current harness, sharing that state).
type TCP struct {
	base
	codec Codec

	lmu       sync.Mutex
	addrs     map[fabric.NodeID]string
	listeners map[fabric.NodeID]net.Listener
	conns     map[[2]fabric.NodeID]*peerConn
	lwg       sync.WaitGroup // accept + reader goroutines
}

var _ fabric.Fabric = (*TCP)(nil)

// peerConn is one cached outbound connection with serialized writes.
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewTCP builds a TCP fabric; the codec is required (messages must cross
// a real wire).
func NewTCP(codec Codec) (*TCP, error) {
	if codec == nil {
		return nil, errors.New("livenet: tcp fabric requires a codec")
	}
	return &TCP{
		base:      newBase(),
		codec:     codec,
		addrs:     make(map[fabric.NodeID]string),
		listeners: make(map[fabric.NodeID]net.Listener),
		conns:     make(map[[2]fabric.NodeID]*peerConn),
	}, nil
}

// Register adds the node and opens its listener. Listener failure is
// fatal to the node's reachability; it is reported via panic because it
// only happens when the host is out of ports or sockets are forbidden —
// both unrecoverable for a benchmark run.
func (t *TCP) Register(id fabric.NodeID, h fabric.Handler) {
	t.base.Register(id, h)
	t.lmu.Lock()
	defer t.lmu.Unlock()
	if _, ok := t.listeners[id]; ok {
		return // re-registration replaces the handler only
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("livenet: listen for %s: %v", id, err))
	}
	t.listeners[id] = ln
	t.addrs[id] = ln.Addr().String()
	t.lwg.Add(1)
	go t.acceptLoop(id, ln)
}

// Addr returns the node's listen address (for logging and the
// multi-process deployment planned in ROADMAP.md).
func (t *TCP) Addr(id fabric.NodeID) string {
	t.lmu.Lock()
	defer t.lmu.Unlock()
	return t.addrs[id]
}

// acceptLoop accepts inbound connections for one node until its listener
// closes.
func (t *TCP) acceptLoop(id fabric.NodeID, ln net.Listener) {
	defer t.lwg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		t.lwg.Add(1)
		go t.readLoop(id, conn)
	}
}

// readLoop parses frames off one inbound connection and delivers them to
// the owning node's mailbox. Any framing, length, or codec error tears
// the connection down (the sender will reconnect).
func (t *TCP) readLoop(to fabric.NodeID, conn net.Conn) {
	defer t.lwg.Done()
	defer conn.Close()
	var header [4]byte
	for {
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			return
		}
		frameLen := binary.BigEndian.Uint32(header[:])
		if frameLen < 2 || frameLen > maxFrameBytes {
			t.st.droppedUnknown.Add(1)
			return
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		fromLen := binary.BigEndian.Uint16(frame[:2])
		if int(fromLen) > len(frame)-2 {
			t.st.droppedUnknown.Add(1)
			return
		}
		from := fabric.NodeID(frame[2 : 2+fromLen])
		msg, err := t.codec.Decode(frame[2+fromLen:])
		if err != nil {
			t.st.droppedUnknown.Add(1)
			return
		}
		n, ok := t.lookup(to)
		if !ok {
			t.st.droppedUnknown.Add(1)
			continue
		}
		n.enqueue(func() {
			t.st.delivered.Add(1)
			n.handler().HandleMessage(from, msg)
		})
	}
}

// Send encodes msg and writes it to the destination's socket, dialing or
// reconnecting as needed. Drop rules match the other backends.
func (t *TCP) Send(from, to fabric.NodeID, msg fabric.Message, size int) {
	if _, ok := t.admit(from, to); !ok {
		return
	}
	data, err := t.codec.Encode(msg)
	if err != nil {
		t.st.droppedUnknown.Add(1)
		return
	}
	frame := buildFrame(from, data)
	if len(frame)-4 > maxFrameBytes {
		t.st.droppedUnknown.Add(1)
		return
	}
	if err := t.write(from, to, frame); err != nil {
		t.st.droppedUnknown.Add(1)
		return
	}
	t.st.bytes.Add(uint64(len(frame)))
}

// buildFrame assembles the length-prefixed wire frame.
func buildFrame(from fabric.NodeID, payload []byte) []byte {
	frameLen := 2 + len(from) + len(payload)
	frame := make([]byte, 4+frameLen)
	binary.BigEndian.PutUint32(frame[:4], uint32(frameLen))
	binary.BigEndian.PutUint16(frame[4:6], uint16(len(from)))
	copy(frame[6:], from)
	copy(frame[6+len(from):], payload)
	return frame
}

// write sends a frame on the cached (from, to) connection, reconnecting
// once if the cached connection has gone bad.
func (t *TCP) write(from, to fabric.NodeID, frame []byte) error {
	pc, err := t.peer(from, to)
	if err != nil {
		return err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == nil {
		if pc.conn, err = t.dial(to); err != nil {
			return err
		}
	}
	if _, err = pc.conn.Write(frame); err == nil {
		return nil
	}
	// Reconnect once: the peer may have dropped the connection (idle
	// teardown, a reader that hit a bad frame) without the node being
	// down.
	pc.conn.Close()
	pc.conn = nil
	conn, derr := t.dial(to)
	if derr != nil {
		return derr
	}
	if _, werr := conn.Write(frame); werr != nil {
		conn.Close()
		return werr
	}
	pc.conn = conn
	return nil
}

// peer returns (creating if needed) the connection slot for (from, to).
func (t *TCP) peer(from, to fabric.NodeID) (*peerConn, error) {
	key := [2]fabric.NodeID{from, to}
	t.lmu.Lock()
	defer t.lmu.Unlock()
	if _, ok := t.addrs[to]; !ok {
		return nil, fmt.Errorf("livenet: no listener for %s", to)
	}
	pc, ok := t.conns[key]
	if !ok {
		pc = &peerConn{}
		t.conns[key] = pc
	}
	return pc, nil
}

// dial opens a connection to the node's current listen address.
func (t *TCP) dial(to fabric.NodeID) (net.Conn, error) {
	t.lmu.Lock()
	addr, ok := t.addrs[to]
	t.lmu.Unlock()
	if !ok {
		return nil, fmt.Errorf("livenet: no listener for %s", to)
	}
	return net.Dial("tcp", addr)
}

// Close tears down listeners, connections, and mailboxes, then waits for
// every fabric goroutine to exit.
func (t *TCP) Close() {
	t.lmu.Lock()
	for _, ln := range t.listeners {
		ln.Close()
	}
	for _, pc := range t.conns {
		pc.mu.Lock()
		if pc.conn != nil {
			pc.conn.Close()
			pc.conn = nil
		}
		pc.mu.Unlock()
	}
	t.lmu.Unlock()
	t.lwg.Wait()
	t.closeNodes()
}
