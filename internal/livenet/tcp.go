package livenet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cicero/internal/fabric"
)

// maxFrameBytes caps one wire frame. Legitimate Cicero messages are a few
// kilobytes (the largest carry Feldman commitment vectors); anything near
// the cap is a corrupted or hostile length prefix, and rejecting it keeps
// a bad frame from forcing a huge allocation.
const maxFrameBytes = 1 << 22

// TCP is the live backend over TCP sockets. Every registered node gets
// its own listener on 127.0.0.1 (kernel-assigned port); each (from, to)
// pair gets a peer link: a bounded outbound queue drained by a writer
// goroutine that dials lazily, retries with bounded exponential backoff
// and jitter under per-attempt deadlines, and sits behind a per-peer
// circuit breaker that trips after repeated dial failures and probes
// half-open after a cooldown. Messages travel as length-prefixed
// wire-codec frames:
//
//	[4B frame length][8B lamport clock][2B sender-id length][sender id][codec bytes]
//
// The fabric runs in two shapes. The single-process shape (NewTCP) hosts
// every node in one process: crash and partition state is enforced at the
// sending fabric, and a crash additionally severs the node's sockets —
// its listener closes, its accepted connections drop, and every peer link
// touching it shuts down — while a restart re-listens on a fresh port, so
// recovery exercises real redials. The multi-process shape (NewTCPNode)
// hosts only this process's nodes locally and routes every other
// destination through a static address map (internal/distrib): crashes
// there are real SIGKILLs and partitions are sockets severed by the
// supervisor's per-node proxies, not flags in shared memory.
type TCP struct {
	base
	codec Codec
	res   Resilience
	rng   *lockedRand
	// remotes maps nodes hosted by other processes to their dial
	// addresses (the distributed deployment's static address map). Local
	// registrations always win, so a process's own nodes short-circuit.
	remotes map[fabric.NodeID]string
	// clock, when set, stamps every outbound frame and observes every
	// inbound one (cross-process causal order for trace merging).
	clock *LamportClock

	lmu       sync.Mutex
	tclosed   bool
	addrs     map[fabric.NodeID]string
	listeners map[fabric.NodeID]net.Listener
	inbound   map[net.Conn]fabric.NodeID
	links     map[[2]fabric.NodeID]*peerLink
	lwg       sync.WaitGroup // accept + reader + link writer goroutines
}

var (
	_ fabric.Fabric        = (*TCP)(nil)
	_ fabric.FaultInjector = (*TCP)(nil)
)

// NewTCP builds a TCP fabric with DefaultResilience; the codec is
// required (messages must cross a real wire).
func NewTCP(codec Codec) (*TCP, error) {
	return NewTCPWithResilience(codec, DefaultResilience())
}

// NewTCPWithResilience builds a TCP fabric with an explicit resilience
// configuration (zero fields take defaults).
func NewTCPWithResilience(codec Codec, res Resilience) (*TCP, error) {
	return NewTCPNode(TCPOptions{Codec: codec, Resilience: res})
}

// TCPOptions configures a TCP fabric.
type TCPOptions struct {
	// Codec serializes messages for the wire (required).
	Codec Codec
	// Resilience tunes dial/retry/breaker behavior (zero fields take
	// defaults).
	Resilience Resilience
	// Remotes is the static address map of the distributed deployment:
	// node id -> dial address for every node hosted by another process.
	// Nil or empty keeps the single-process behavior (sends to
	// unregistered nodes fail with ErrUnknownNode).
	Remotes map[fabric.NodeID]string
	// Clock, when non-nil, is ticked for every outbound frame and
	// observed for every inbound one, establishing a cross-process
	// Lamport order.
	Clock *LamportClock
}

// NewTCPNode builds a TCP fabric for one process of a multi-process
// deployment: nodes registered here are served locally, every address in
// opts.Remotes is reachable over the wire, and frames carry the process's
// Lamport clock when one is provided.
func NewTCPNode(opts TCPOptions) (*TCP, error) {
	if opts.Codec == nil {
		return nil, errors.New("livenet: tcp fabric requires a codec")
	}
	remotes := make(map[fabric.NodeID]string, len(opts.Remotes))
	for id, addr := range opts.Remotes {
		remotes[id] = addr
	}
	return &TCP{
		base:      newBase(),
		codec:     opts.Codec,
		res:       opts.Resilience.withDefaults(),
		rng:       newLockedRand(time.Now().UnixNano()),
		remotes:   remotes,
		clock:     opts.Clock,
		addrs:     make(map[fabric.NodeID]string),
		listeners: make(map[fabric.NodeID]net.Listener),
		inbound:   make(map[net.Conn]fabric.NodeID),
		links:     make(map[[2]fabric.NodeID]*peerLink),
	}, nil
}

// Clock returns the fabric's Lamport clock (nil unless configured).
func (t *TCP) Clock() *LamportClock { return t.clock }

// Register adds the node and opens its listener. Listener failure is
// fatal to the node's reachability; it is reported via panic because it
// only happens when the host is out of ports or sockets are forbidden —
// both unrecoverable for a benchmark run.
func (t *TCP) Register(id fabric.NodeID, h fabric.Handler) {
	t.base.Register(id, h)
	t.lmu.Lock()
	defer t.lmu.Unlock()
	if t.tclosed {
		return
	}
	if _, ok := t.listeners[id]; ok {
		return // re-registration replaces the handler only
	}
	t.listen(id)
}

// listen opens the node's listener and starts its accept loop (lmu held).
func (t *TCP) listen(id fabric.NodeID) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("livenet: listen for %s: %v", id, err))
	}
	t.listeners[id] = ln
	t.addrs[id] = ln.Addr().String()
	t.lwg.Add(1)
	go t.acceptLoop(id, ln)
}

// Addr returns the node's listen address (for logging and the
// multi-process deployment planned in ROADMAP.md). A crashed node has no
// address until it restarts.
func (t *TCP) Addr(id fabric.NodeID) string {
	t.lmu.Lock()
	defer t.lmu.Unlock()
	return t.addrs[id]
}

// acceptLoop accepts inbound connections for one node until its listener
// closes (fabric shutdown or a crash fault).
func (t *TCP) acceptLoop(id fabric.NodeID, ln net.Listener) {
	defer t.lwg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		t.lmu.Lock()
		if t.tclosed {
			t.lmu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = id
		t.lmu.Unlock()
		t.lwg.Add(1)
		go t.readLoop(id, conn)
	}
}

// dropInbound forgets a finished inbound connection.
func (t *TCP) dropInbound(conn net.Conn) {
	t.lmu.Lock()
	delete(t.inbound, conn)
	t.lmu.Unlock()
}

// readLoop parses frames off one inbound connection and delivers them to
// the owning node's mailbox. Any framing, length, or codec error tears
// the connection down (the sender will reconnect).
func (t *TCP) readLoop(to fabric.NodeID, conn net.Conn) {
	defer t.lwg.Done()
	defer t.dropInbound(conn)
	defer conn.Close()
	var header [4]byte
	for {
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			return
		}
		frameLen := binary.BigEndian.Uint32(header[:])
		if frameLen < minFrameLen || frameLen > maxFrameBytes {
			t.st.droppedUnknown.Add(1)
			return
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		clock := binary.BigEndian.Uint64(frame[:8])
		fromLen := binary.BigEndian.Uint16(frame[8:10])
		if int(fromLen) > len(frame)-minFrameLen {
			t.st.droppedUnknown.Add(1)
			return
		}
		from := fabric.NodeID(frame[10 : 10+fromLen])
		msg, err := t.codec.Decode(frame[10+fromLen:])
		if err != nil {
			t.st.droppedUnknown.Add(1)
			return
		}
		if t.Crashed(to) {
			// The node crashed while the frame was in flight.
			t.st.droppedCrash.Add(1)
			continue
		}
		n, ok := t.lookup(to)
		if !ok {
			t.st.droppedUnknown.Add(1)
			continue
		}
		n.enqueue(func() {
			if t.clock != nil {
				t.clock.Observe(clock)
			}
			t.st.delivered.Add(1)
			n.handler().HandleMessage(from, msg)
		})
	}
}

// Send encodes msg and hands it to the peer link's writer (fire-and-
// forget form). Drop rules match the other backends.
func (t *TCP) Send(from, to fabric.NodeID, msg fabric.Message, size int) {
	_ = t.SendErr(from, to, msg, size)
}

// SendErr is Send with a typed verdict. It never blocks: a crashed,
// partitioned, or unknown destination, an injected drop, an encode
// failure, an open circuit breaker, or a full peer queue all fail fast
// with the matching typed error. A nil return means the frame was
// accepted by the peer link's writer; delivery remains best-effort
// (datagram semantics — the writer's retry budget can still run out).
func (t *TCP) SendErr(from, to fabric.NodeID, msg fabric.Message, size int) error {
	if _, err := t.admitSend(from, to, t.hasRemote(to)); err != nil {
		return err
	}
	msg, copies, delay, err := t.inject(from, to, msg, size)
	if err != nil {
		return err
	}
	data, err := t.codec.Encode(msg)
	if err != nil {
		t.st.droppedUnknown.Add(1)
		return ErrEncode
	}
	var clock uint64
	if t.clock != nil {
		clock = t.clock.Tick()
	}
	frame := buildFrame(from, data, clock)
	if len(frame)-4 > maxFrameBytes {
		t.st.droppedUnknown.Add(1)
		return ErrEncode
	}
	l, err := t.link(from, to)
	if err != nil {
		t.st.droppedUnknown.Add(1)
		return err
	}
	var firstErr error
	for i := 0; i < copies; i++ {
		if delay > 0 {
			time.AfterFunc(delay, func() { _ = l.send(frame) })
			continue
		}
		if err := l.send(frame); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// minFrameLen is the smallest legal frame body: the 8-byte clock plus
// the 2-byte sender-length prefix.
const minFrameLen = 10

// buildFrame assembles the length-prefixed wire frame.
func buildFrame(from fabric.NodeID, payload []byte, clock uint64) []byte {
	frameLen := minFrameLen + len(from) + len(payload)
	frame := make([]byte, 4+frameLen)
	binary.BigEndian.PutUint32(frame[:4], uint32(frameLen))
	binary.BigEndian.PutUint64(frame[4:12], clock)
	binary.BigEndian.PutUint16(frame[12:14], uint16(len(from)))
	copy(frame[14:], from)
	copy(frame[14+len(from):], payload)
	return frame
}

// hasRemote reports whether the node has a static remote address (and is
// therefore sendable even when not registered in this process).
func (t *TCP) hasRemote(to fabric.NodeID) bool {
	_, ok := t.remotes[to]
	return ok
}

// link returns (creating if needed) the peer link for (from, to).
func (t *TCP) link(from, to fabric.NodeID) (*peerLink, error) {
	key := [2]fabric.NodeID{from, to}
	t.lmu.Lock()
	defer t.lmu.Unlock()
	if t.tclosed {
		return nil, ErrFabricClosed
	}
	if _, ok := t.addrs[to]; !ok && !t.hasRemote(to) {
		return nil, ErrUnknownNode
	}
	l, ok := t.links[key]
	if !ok {
		l = &peerLink{
			t:    t,
			from: from,
			to:   to,
			outq: make(chan []byte, t.res.QueueLen),
			done: make(chan struct{}),
			brk: newBreaker(t.res.BreakerThreshold, t.res.BreakerCooldown,
				func() { t.st.breakerTrips.Add(1) }),
		}
		t.links[key] = l
		t.lwg.Add(1)
		go l.run()
	}
	return l, nil
}

// dial opens a connection to the node's current listen address (locally
// registered nodes win over static remote routes), bounded by the
// configured dial timeout.
func (t *TCP) dial(to fabric.NodeID) (net.Conn, error) {
	t.lmu.Lock()
	addr, ok := t.addrs[to]
	t.lmu.Unlock()
	if !ok {
		addr, ok = t.remotes[to]
	}
	if !ok {
		return nil, ErrUnknownNode
	}
	return net.DialTimeout("tcp", addr, t.res.DialTimeout)
}

// Crash marks the node failed and severs its sockets: its listener
// closes, its accepted inbound connections drop, and every peer link
// touching it shuts down. Queued frames on those links are lost — the
// volatile-state semantics of a real crash.
func (t *TCP) Crash(id fabric.NodeID) {
	t.base.Crash(id)
	t.lmu.Lock()
	ln := t.listeners[id]
	delete(t.listeners, id)
	delete(t.addrs, id)
	var conns []net.Conn
	for c, owner := range t.inbound {
		if owner == id {
			conns = append(conns, c)
		}
	}
	var links []*peerLink
	for key, l := range t.links {
		if key[0] == id || key[1] == id {
			links = append(links, l)
			delete(t.links, key)
		}
	}
	t.lmu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	for _, l := range links {
		l.close()
	}
}

// Restart clears the crash flag and brings the node back on a fresh
// listener (new kernel-assigned port — senders discover it on their next
// dial). The node's volatile transport state is gone; protocol-level
// recovery is the application's job.
func (t *TCP) Restart(id fabric.NodeID) {
	t.base.Restart(id)
	if _, ok := t.lookup(id); !ok {
		return
	}
	t.lmu.Lock()
	defer t.lmu.Unlock()
	if t.tclosed {
		return
	}
	if _, ok := t.listeners[id]; !ok {
		t.listen(id)
	}
}

// Close tears down listeners, connections, links, and mailboxes, then
// waits for every fabric goroutine to exit.
func (t *TCP) Close() {
	t.lmu.Lock()
	if t.tclosed {
		t.lmu.Unlock()
		t.closeNodes()
		return
	}
	t.tclosed = true
	listeners := t.listeners
	t.listeners = make(map[fabric.NodeID]net.Listener)
	conns := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		conns = append(conns, c)
	}
	links := make([]*peerLink, 0, len(t.links))
	for _, l := range t.links {
		links = append(links, l)
	}
	t.lmu.Unlock()
	for _, ln := range listeners {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	for _, l := range links {
		l.close()
	}
	t.lwg.Wait()
	t.closeNodes()
}

// peerLink is one (from, to) outbound path: a bounded queue drained by a
// writer goroutine behind a circuit breaker.
type peerLink struct {
	t        *TCP
	from, to fabric.NodeID
	outq     chan []byte
	done     chan struct{}
	once     sync.Once
	brk      *breaker

	// cmu guards conn; the writer goroutine owns the connection lifecycle
	// but crash severing (and tests) close it from outside.
	cmu       sync.Mutex
	conn      net.Conn
	connected bool // a connection has existed before (reconnect accounting)
}

// send enqueues one frame, failing fast when the breaker is open, the
// link is shut down, or the bounded queue is full.
func (l *peerLink) send(frame []byte) error {
	if l.brk.Rejecting(time.Now()) {
		l.t.st.droppedUnknown.Add(1)
		return ErrPeerUnreachable
	}
	select {
	case <-l.done:
		l.t.st.droppedUnknown.Add(1)
		return ErrPeerUnreachable
	default:
	}
	select {
	case l.outq <- frame:
		return nil
	default:
		l.t.st.droppedUnknown.Add(1)
		return ErrSendQueueFull
	}
}

// close shuts the link down; the writer goroutine exits and closes the
// connection.
func (l *peerLink) close() {
	l.once.Do(func() { close(l.done) })
}

// run is the writer goroutine: it drains the queue, transmitting each
// frame with the retry/backoff/deadline budget.
func (l *peerLink) run() {
	defer l.t.lwg.Done()
	defer l.closeConn()
	for {
		select {
		case <-l.done:
			return
		case frame := <-l.outq:
			if err := l.transmit(frame); err != nil {
				l.t.st.droppedUnknown.Add(1)
			}
		}
	}
}

// transmit writes one frame, dialing as needed, with bounded retries.
func (l *peerLink) transmit(frame []byte) error {
	res := l.t.res
	var lastErr error
	for attempt := 1; attempt <= res.MaxAttempts; attempt++ {
		if attempt > 1 {
			l.t.st.retries.Add(1)
			if !l.wait(res.Backoff.Delay(attempt-1, l.t.rng.Float64)) {
				return ErrPeerUnreachable // link shut down mid-backoff
			}
		}
		conn := l.currentConn()
		if conn == nil {
			now := time.Now()
			if !l.brk.Allow(now) {
				lastErr = ErrPeerUnreachable
				continue
			}
			c, err := l.t.dial(l.to)
			if err != nil {
				l.brk.Failure(time.Now())
				lastErr = err
				continue
			}
			l.brk.Success()
			conn = c
			if !l.setConn(c) {
				return ErrPeerUnreachable // link closed while dialing
			}
		}
		conn.SetWriteDeadline(time.Now().Add(res.WriteTimeout))
		if _, err := conn.Write(frame); err != nil {
			l.dropConn(conn)
			lastErr = err
			continue
		}
		l.t.st.bytes.Add(uint64(len(frame)))
		return nil
	}
	return lastErr
}

// wait sleeps for the backoff delay, returning false if the link shuts
// down first.
func (l *peerLink) wait(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-l.done:
		return false
	}
}

// currentConn reads the cached connection.
func (l *peerLink) currentConn() net.Conn {
	l.cmu.Lock()
	defer l.cmu.Unlock()
	return l.conn
}

// setConn installs a freshly dialed connection, counting a reconnect when
// it replaces an earlier one. It refuses (closing the connection) when
// the link has shut down meanwhile.
func (l *peerLink) setConn(c net.Conn) bool {
	select {
	case <-l.done:
		c.Close()
		return false
	default:
	}
	l.cmu.Lock()
	if l.connected {
		l.t.st.reconnects.Add(1)
	}
	l.connected = true
	l.conn = c
	l.cmu.Unlock()
	return true
}

// dropConn discards a failed connection (only if still current).
func (l *peerLink) dropConn(c net.Conn) {
	c.Close()
	l.cmu.Lock()
	if l.conn == c {
		l.conn = nil
	}
	l.cmu.Unlock()
}

// closeConn closes whatever connection the link holds.
func (l *peerLink) closeConn() {
	l.cmu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.cmu.Unlock()
}
