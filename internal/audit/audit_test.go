package audit

import (
	"errors"
	"fmt"
	"testing"
)

// honestLedger records the same decision stream every correct controller
// would produce.
func honestLedger(updates int) *Ledger {
	var l Ledger
	for i := 1; i <= updates; i++ {
		l.Append(KindEvent, fmt.Sprintf("ev%d", i), []byte(fmt.Sprintf("event-%d", i)))
		l.Append(KindUpdate, fmt.Sprintf("u%d", i), []byte(fmt.Sprintf("update-bytes-%d", i)))
	}
	return &l
}

func TestVerifyAcceptsHonestChain(t *testing.T) {
	l := honestLedger(10)
	if err := Verify(l.Records()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if l.Len() != 20 {
		t.Fatalf("Len = %d, want 20", l.Len())
	}
}

func TestVerifyDetectsContentTampering(t *testing.T) {
	l := honestLedger(5)
	records := l.Records()
	// Rewrite history: change record 3's canonical bytes.
	records[2].Canonical = []byte("forged")
	if err := Verify(records); !errors.Is(err, ErrTamperedRecord) {
		t.Fatalf("expected ErrTamperedRecord, got %v", err)
	}
}

func TestVerifyDetectsChainSplice(t *testing.T) {
	l := honestLedger(5)
	records := l.Records()
	// Remove a middle record and renumber — the hashes no longer chain.
	spliced := append(append([]Record(nil), records[:3]...), records[4:]...)
	for i := range spliced {
		spliced[i].Seq = uint64(i + 1)
		spliced[i].Hash = hashRecord(&spliced[i])
	}
	err := Verify(spliced)
	if !errors.Is(err, ErrBrokenChain) && !errors.Is(err, ErrTamperedRecord) {
		t.Fatalf("expected chain error, got %v", err)
	}
}

func TestVerifyDetectsBadSequence(t *testing.T) {
	l := honestLedger(3)
	records := l.Records()
	records[1].Seq = 9
	if err := Verify(records); !errors.Is(err, ErrBadSequence) {
		t.Fatalf("expected ErrBadSequence, got %v", err)
	}
}

func TestAuditUnanimousProducesNoFindings(t *testing.T) {
	ledgers := map[string][]Record{
		"ctl1": honestLedger(8).Records(),
		"ctl2": honestLedger(8).Records(),
		"ctl3": honestLedger(8).Records(),
		"ctl4": honestLedger(8).Records(),
	}
	if findings := Audit(ledgers); len(findings) != 0 {
		t.Fatalf("unexpected findings: %+v", findings)
	}
}

func TestAuditIdentifiesEquivocator(t *testing.T) {
	// Three honest controllers and one that signed different update bytes
	// for u2 (e.g., tried to smuggle a different rule past the quorum).
	var evil Ledger
	for i := 1; i <= 4; i++ {
		evil.Append(KindEvent, fmt.Sprintf("ev%d", i), []byte(fmt.Sprintf("event-%d", i)))
		payload := fmt.Sprintf("update-bytes-%d", i)
		if i == 2 {
			payload = "malicious-reroute"
		}
		evil.Append(KindUpdate, fmt.Sprintf("u%d", i), []byte(payload))
	}
	ledgers := map[string][]Record{
		"ctl1": honestLedger(4).Records(),
		"ctl2": honestLedger(4).Records(),
		"ctl3": honestLedger(4).Records(),
		"evil": evil.Records(),
	}
	findings := Audit(ledgers)
	if len(findings) != 1 {
		t.Fatalf("findings = %+v, want exactly 1", findings)
	}
	f := findings[0]
	if f.Subject != "u2" {
		t.Errorf("subject = %q, want u2", f.Subject)
	}
	if len(f.Suspects) != 1 || f.Suspects[0] != "evil" {
		t.Errorf("suspects = %v, want [evil]", f.Suspects)
	}
}

func TestAuditFlagsBrokenChainAsFinding(t *testing.T) {
	broken := honestLedger(3).Records()
	broken[1].Canonical = []byte("rewritten")
	ledgers := map[string][]Record{
		"ctl1": honestLedger(3).Records(),
		"ctl2": honestLedger(3).Records(),
		"ctl3": broken,
	}
	findings := Audit(ledgers)
	if len(findings) != 1 {
		t.Fatalf("findings = %+v, want 1", findings)
	}
	if findings[0].Subject != "chain:ctl3" || findings[0].Suspects[0] != "ctl3" {
		t.Fatalf("unexpected finding: %+v", findings[0])
	}
}

func TestAuditToleratesLaggingController(t *testing.T) {
	// A controller missing the tail of the stream is NOT a suspect.
	ledgers := map[string][]Record{
		"ctl1": honestLedger(6).Records(),
		"ctl2": honestLedger(6).Records(),
		"slow": honestLedger(3).Records(),
	}
	if findings := Audit(ledgers); len(findings) != 0 {
		t.Fatalf("lagging controller flagged: %+v", findings)
	}
}

func TestAuditMajorityRule(t *testing.T) {
	// Two variants with 3 vs 1 recorders: the singleton is the suspect,
	// whichever map order the auditor sees.
	divergent := func(tag string) []Record {
		var l Ledger
		l.Append(KindUpdate, "u1", []byte(tag))
		return l.Records()
	}
	ledgers := map[string][]Record{
		"a": divergent("common"),
		"b": divergent("common"),
		"c": divergent("common"),
		"d": divergent("outlier"),
	}
	findings := Audit(ledgers)
	if len(findings) != 1 || len(findings[0].Suspects) != 1 || findings[0].Suspects[0] != "d" {
		t.Fatalf("majority rule failed: %+v", findings)
	}
}

func BenchmarkLedgerAppend(b *testing.B) {
	var l Ledger
	payload := []byte("update|tor-7|prio=10 *->h42 output:edge-2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(KindUpdate, "u", payload)
	}
}

func BenchmarkAudit4x1000(b *testing.B) {
	ledgers := map[string][]Record{
		"c1": honestLedger(500).Records(),
		"c2": honestLedger(500).Records(),
		"c3": honestLedger(500).Records(),
		"c4": honestLedger(500).Records(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := Audit(ledgers); len(f) != 0 {
			b.Fatal("unexpected findings")
		}
	}
}
