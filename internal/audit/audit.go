// Package audit implements the paper's proposed future work (§7): a
// ledger of control-plane decisions, coupled with the atomic broadcast,
// that makes (potentially transient and malicious) controller failures
// detectable through auditability.
//
// Each controller appends every decision — event delivered, update signed
// — to an append-only hash chain. Because events are totally ordered and
// update computation is deterministic, the ledgers of correct controllers
// record the *same canonical bytes* for the same update id. An auditor
// that collects ledgers can therefore (a) verify each chain's integrity
// (a controller cannot silently rewrite its history) and (b) cross-check
// decisions across controllers, identifying equivocators by majority.
package audit

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Kind classifies a ledger record.
type Kind int

// Record kinds. Start at 1 so the zero value is invalid.
const (
	// KindEvent records the delivery of an event in broadcast order.
	KindEvent Kind = iota + 1
	// KindUpdate records the canonical bytes of a signed update.
	KindUpdate
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindEvent:
		return "event"
	case KindUpdate:
		return "update"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Record is one audited decision.
type Record struct {
	Seq  uint64
	Kind Kind
	// Subject is the event or update id.
	Subject string
	// Canonical is the byte string the decision commits to (the event
	// encoding or the threshold-signed update bytes).
	Canonical []byte
	// PrevHash chains the record to its predecessor.
	PrevHash [32]byte
	// Hash authenticates the record: H(seq || kind || subject ||
	// canonical || prev).
	Hash [32]byte
}

// hashRecord computes a record's chained hash.
func hashRecord(r *Record) [32]byte {
	h := sha256.New()
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], r.Seq)
	binary.BigEndian.PutUint32(hdr[8:], uint32(r.Kind))
	h.Write(hdr[:])
	h.Write([]byte(r.Subject))
	h.Write(r.Canonical)
	h.Write(r.PrevHash[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Ledger is a controller's append-only decision chain. The zero value is
// ready to use.
type Ledger struct {
	records []Record
}

// Append adds a decision and returns the sealed record.
func (l *Ledger) Append(kind Kind, subject string, canonical []byte) Record {
	r := Record{
		Seq:       uint64(len(l.records) + 1),
		Kind:      kind,
		Subject:   subject,
		Canonical: append([]byte(nil), canonical...),
	}
	if len(l.records) > 0 {
		r.PrevHash = l.records[len(l.records)-1].Hash
	}
	r.Hash = hashRecord(&r)
	l.records = append(l.records, r)
	return r
}

// Len returns the chain length.
func (l *Ledger) Len() int { return len(l.records) }

// Records returns a copy of the chain.
func (l *Ledger) Records() []Record {
	return append([]Record(nil), l.records...)
}

// Errors returned by verification.
var (
	// ErrBrokenChain reports a record whose PrevHash does not match.
	ErrBrokenChain = errors.New("audit: broken hash chain")
	// ErrTamperedRecord reports a record whose hash does not match its
	// content.
	ErrTamperedRecord = errors.New("audit: tampered record")
	// ErrBadSequence reports non-contiguous sequence numbers.
	ErrBadSequence = errors.New("audit: bad sequence numbering")
)

// Verify checks the chain's integrity.
func Verify(records []Record) error {
	var prev [32]byte
	for i := range records {
		r := records[i]
		if r.Seq != uint64(i+1) {
			return fmt.Errorf("%w: record %d has seq %d", ErrBadSequence, i, r.Seq)
		}
		if r.PrevHash != prev {
			return fmt.Errorf("%w: at seq %d", ErrBrokenChain, r.Seq)
		}
		if hashRecord(&r) != r.Hash {
			return fmt.Errorf("%w: at seq %d", ErrTamperedRecord, r.Seq)
		}
		prev = r.Hash
	}
	return nil
}

// Finding reports one audited divergence.
type Finding struct {
	// Subject is the update/event id the controllers disagree on.
	Subject string
	// Suspects are the controllers whose recorded bytes differ from the
	// majority.
	Suspects []string
	// Detail explains the finding.
	Detail string
}

// Audit cross-checks the ledgers of multiple controllers. A controller
// whose chain fails verification, or whose canonical bytes for a subject
// differ from the majority of recorders, is reported. Missing records are
// not findings (a controller may lag); conflicting ones are.
func Audit(ledgers map[string][]Record) []Finding {
	var findings []Finding
	// 1. Chain integrity.
	names := make([]string, 0, len(ledgers))
	for name := range ledgers {
		names = append(names, name)
	}
	sort.Strings(names)
	valid := make(map[string]bool, len(names))
	for _, name := range names {
		if err := Verify(ledgers[name]); err != nil {
			findings = append(findings, Finding{
				Subject:  "chain:" + name,
				Suspects: []string{name},
				Detail:   err.Error(),
			})
			continue
		}
		valid[name] = true
	}
	// 2. Cross-controller consistency per subject.
	type vote struct {
		bytes []byte
		who   []string
	}
	subjects := make(map[string][]vote)
	var order []string
	for _, name := range names {
		if !valid[name] {
			continue
		}
		for _, r := range ledgers[name] {
			if r.Kind != KindUpdate {
				continue
			}
			votes := subjects[r.Subject]
			if votes == nil {
				order = append(order, r.Subject)
			}
			placed := false
			for i := range votes {
				if bytes.Equal(votes[i].bytes, r.Canonical) {
					votes[i].who = append(votes[i].who, name)
					placed = true
					break
				}
			}
			if !placed {
				votes = append(votes, vote{bytes: r.Canonical, who: []string{name}})
			}
			subjects[r.Subject] = votes
		}
	}
	for _, subject := range order {
		votes := subjects[subject]
		if len(votes) < 2 {
			continue // unanimous
		}
		// Majority variant wins; everyone else is suspect.
		sort.Slice(votes, func(i, j int) bool {
			if len(votes[i].who) != len(votes[j].who) {
				return len(votes[i].who) > len(votes[j].who)
			}
			return bytes.Compare(votes[i].bytes, votes[j].bytes) < 0
		})
		var suspects []string
		for _, v := range votes[1:] {
			suspects = append(suspects, v.who...)
		}
		sort.Strings(suspects)
		findings = append(findings, Finding{
			Subject:  subject,
			Suspects: suspects,
			Detail: fmt.Sprintf("%d controllers recorded different update bytes (majority %d)",
				len(suspects), len(votes[0].who)),
		})
	}
	return findings
}

// ChainDigest returns the chain's final hash — an order-sensitive
// commitment to the whole ledger. Two ledgers with equal ChainDigest
// recorded the same decisions in the same order (the cross-backend
// identity the live single-flow experiments assert).
func ChainDigest(records []Record) [32]byte {
	if len(records) == 0 {
		return [32]byte{}
	}
	return records[len(records)-1].Hash
}

// ContentDigest returns an order-insensitive commitment to the ledger:
// the hash of the sorted per-record lines. Concurrent workloads reach
// the atomic broadcast in backend-dependent order, so cross-backend
// comparison of multi-flow runs uses this digest — same decisions, any
// order.
func ContentDigest(records []Record) [32]byte {
	lines := make([]string, len(records))
	for i, r := range records {
		lines[i] = fmt.Sprintf("%s|%s|%x", r.Kind, r.Subject, r.Canonical)
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, line := range lines {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
