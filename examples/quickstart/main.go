// Quickstart: assemble a single-domain Cicero deployment on one server
// pod, run a handful of flows, and print what the protocol did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"cicero"
)

func main() {
	// A server pod: 8 racks, each with a top-of-rack switch and two
	// hosts, under 4 edge switches (the paper's Fig. 10, scaled down).
	topo, err := cicero.SinglePod(8, 2)
	if err != nil {
		log.Fatalf("build topology: %v", err)
	}

	// A Cicero deployment: 4 controllers (tolerates 1 Byzantine fault,
	// update quorum t=2), switch-side signature aggregation, real BLS
	// threshold signatures.
	net, err := cicero.New(cicero.Options{
		Topology:    topo,
		Controllers: 4,
		RealCrypto:  true,
		Seed:        1,
	})
	if err != nil {
		log.Fatalf("build deployment: %v", err)
	}

	// Flows between racks: the first flow to a destination triggers the
	// full secure update pipeline (event -> BFT agreement -> threshold-
	// signed updates -> quorum verification on switches); later flows to
	// the same destination reuse the installed rules.
	flows := []cicero.Flow{
		{ID: 1, Src: cicero.Host(0, 0, 0, 0), Dst: cicero.Host(0, 0, 5, 1), SizeKB: 256},
		{ID: 2, Src: cicero.Host(0, 0, 1, 0), Dst: cicero.Host(0, 0, 5, 1), SizeKB: 256, Start: 20 * time.Millisecond},
		// Same ingress rack as flow 1 and same destination: its route is
		// already installed, so it starts instantly (rule reuse, §6.1).
		{ID: 3, Src: cicero.Host(0, 0, 0, 1), Dst: cicero.Host(0, 0, 5, 1), SizeKB: 256, Start: 40 * time.Millisecond},
	}
	results, err := net.Run(flows)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Println("flow  setup      completion  rules-reused")
	for _, r := range results {
		fmt.Printf("%4d  %-9v  %-10v  %v\n", r.Flow.ID,
			r.SetupDelay.Round(time.Microsecond),
			r.Completion.Round(time.Microsecond),
			r.RuleReused)
	}
	stats := net.Stats()
	fmt.Printf("\nevents delivered by the control plane: %d\n", stats.EventsDelivered)
	fmt.Printf("threshold-signed updates applied:       %d\n", stats.UpdatesApplied)
	fmt.Printf("updates rejected (should be 0):         %d\n", stats.UpdatesRejected)
}
