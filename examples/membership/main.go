// Control-plane membership changes (the paper's Fig. 8 / §4.3): the
// trusted bootstrap controller admits a fifth member mid-workload, the
// control plane re-deals key shares through the distributed resharing
// protocol — the group public key held by switches never changes — and a
// crashed controller is later detected and removed the same way.
//
//	go run ./examples/membership
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"cicero"
	"cicero/internal/controlplane"
	"cicero/internal/core"
	"cicero/internal/routing"
	"cicero/internal/scheduler"
	"cicero/internal/simnet"
	"cicero/internal/tcrypto/pki"
)

func main() {
	topo, err := cicero.SinglePod(4, 1)
	if err != nil {
		log.Fatal(err)
	}
	net, err := cicero.New(cicero.Options{
		Topology:    topo,
		Controllers: 4,
		RealCrypto:  true,
		Seed:        11,
	})
	if err != nil {
		log.Fatal(err)
	}
	inner := net.Internal()
	dom := inner.Domains[0]
	originalPK := inner.Scheme.Params.PointBytes(dom.GroupKey.PK.Point)
	fmt.Printf("initial control plane: %v (t=%d)\n", dom.Members, dom.Controllers[0].Quorum())
	fmt.Printf("group public key: %x...\n\n", originalPK[:12])

	// Prepare a joining controller (its identity keys registered in the
	// PKI directory out of band, as §4.3 step (i) requires).
	joinerID := core.ControllerName(0, 5)
	keys, err := pki.NewKeyPair(rand.Reader, joinerID)
	if err != nil {
		log.Fatal(err)
	}
	inner.Directory.MustRegister(keys)
	if _, err := controlplane.New(controlplane.Config{
		ID:         joinerID,
		Domain:     0,
		Members:    dom.Members, // current membership; the joiner is not yet in it
		Net:        inner.Net,
		Cost:       inner.Cfg.Cost,
		Keys:       keys,
		Directory:  inner.Directory,
		Protocol:   controlplane.ProtoCicero,
		Scheme:     inner.Scheme,
		GroupKey:   dom.GroupKey, // public material only; its share arrives via resharing
		App:        &routing.ShortestPath{Graph: topo},
		Sched:      scheduler.ReversePath{},
		Switches:   dom.Switches,
		CryptoReal: true,
	}); err != nil {
		log.Fatal(err)
	}

	// Admit it through the bootstrap controller, with flows in flight.
	inner.Sim.Schedule(5*time.Millisecond, func() {
		fmt.Println("bootstrap controller proposes: ADD dom0/ctl/5")
		if err := dom.Controllers[0].RequestAddController(joinerID); err != nil {
			log.Fatal(err)
		}
	})
	flows := []cicero.Flow{
		{ID: 1, Src: cicero.Host(0, 0, 0, 0), Dst: cicero.Host(0, 0, 2, 0), SizeKB: 64},
		{ID: 2, Src: cicero.Host(0, 0, 1, 0), Dst: cicero.Host(0, 0, 3, 0), SizeKB: 64, Start: 6 * time.Millisecond},
		{ID: 3, Src: cicero.Host(0, 0, 3, 0), Dst: cicero.Host(0, 0, 0, 0), SizeKB: 64, Start: 80 * time.Millisecond},
	}
	results, err := net.Run(flows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flows completed across the change: %d/3\n", len(results))
	fmt.Printf("control plane now: %v (phase %d, t=%d)\n",
		dom.Controllers[0].Members(), dom.Controllers[0].Phase(), dom.Controllers[0].Quorum())
	newPK := inner.Scheme.Params.PointBytes(dom.Controllers[0].GroupKey().PK.Point)
	fmt.Printf("public key unchanged after reshare: %v\n\n", string(originalPK) == string(newPK))

	// Now crash the newest member; the failure detector would normally
	// notice — here another member proposes the removal directly.
	fmt.Println("controller dom0/ctl/5 crashes; member 2 proposes: REMOVE")
	inner.Net.Crash(simnet.NodeID(joinerID))
	if err := dom.Controllers[1].RequestRemoveController(joinerID); err != nil {
		log.Fatal(err)
	}
	if _, err := inner.Sim.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control plane now: %v (phase %d)\n",
		dom.Controllers[0].Members(), dom.Controllers[0].Phase())
	finalPK := inner.Scheme.Params.PointBytes(dom.Controllers[0].GroupKey().PK.Point)
	fmt.Printf("public key still unchanged: %v\n", string(originalPK) == string(finalPK))
}
