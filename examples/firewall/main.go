// Firewall consistency (the paper's Fig. 1 / Table 1): a network policy
// blocks h1 -> h5. With Cicero, the firewall's drop rule is enforced at
// the ingress before any route could leak blocked traffic, and routing
// updates for allowed flows install downstream-first so no transient
// window exists. The example also runs the "immediate" (unordered)
// scheduler as a negative control and reports the inconsistency windows
// it produces.
//
//	go run ./examples/firewall
package main

import (
	"fmt"
	"log"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/core"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/routing"
	"cicero/internal/scheduler"
	"cicero/internal/simnet"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// diamond builds the paper's five-switch example topology.
func diamond() (*topology.Graph, error) {
	g := topology.NewGraph()
	for _, id := range []string{"s1", "s2", "s3", "s4", "s5"} {
		g.AddNode(topology.Node{ID: id, Kind: topology.KindToR})
	}
	for _, id := range []string{"h1", "h2", "h5"} {
		g.AddNode(topology.Node{ID: id, Kind: topology.KindHost})
	}
	links := [][2]string{
		{"s1", "s3"}, {"s2", "s3"}, {"s2", "s5"},
		{"s3", "s4"}, {"s4", "s5"},
		{"h1", "s1"}, {"h2", "s2"}, {"h5", "s5"},
	}
	for _, l := range links {
		if err := g.AddLink(l[0], l[1], 200*time.Microsecond, 5); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func main() {
	g, err := diamond()
	if err != nil {
		log.Fatal(err)
	}
	net, err := core.Build(core.Config{
		Graph:    g,
		Protocol: controlplane.ProtoCicero,
		AppFactory: func() routing.App {
			return &routing.Firewall{
				Inner:   &routing.ShortestPath{Graph: g},
				Graph:   g,
				Blocked: []routing.FirewallRule{{Src: "h1", Dst: "h5"}},
			}
		},
		Cost:       protocol.Calibrated(),
		CryptoReal: true,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("policy: block h1 -> h5; allow everything else")
	flows := []workload.Flow{
		{ID: 1, Src: "h1", Dst: "h5", SizeKB: 64},                          // blocked
		{ID: 2, Src: "h2", Dst: "h5", SizeKB: 64, Start: time.Millisecond}, // allowed
	}
	results, err := net.RunFlows(flows, core.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	completed := map[uint64]bool{}
	for _, r := range results {
		completed[r.Flow.ID] = true
	}
	fmt.Printf("blocked flow h1->h5 completed: %v (want false)\n", completed[1])
	fmt.Printf("allowed flow h2->h5 completed: %v (want true)\n", completed[2])
	if rule, ok := net.Switches["s1"].Lookup("h1", "h5"); ok {
		fmt.Printf("ingress s1 rule for h1->h5: %v\n", rule)
	}

	// Negative control: unordered updates create transient black-hole
	// windows during route installation (the root cause that would let a
	// firewall be bypassed mid-update in Fig. 1).
	fmt.Println("\nnegative control: route installation windows over 10 seeds")
	for _, s := range []struct {
		name  string
		sched scheduler.Scheduler
	}{
		{"immediate (unordered)", scheduler.Immediate{}},
		{"reverse-path (cicero)", scheduler.ReversePath{}},
	} {
		violations, worst := measureWindows(s.sched)
		fmt.Printf("  %-22s violations=%d/10 worst-window=%v\n", s.name, violations, worst)
	}
}

// measureWindows counts seeds where an upstream rule lands before its
// downstream neighbor's during a plain route installation.
func measureWindows(sched scheduler.Scheduler) (int, time.Duration) {
	violations := 0
	var worst time.Duration
	for seed := int64(1); seed <= 10; seed++ {
		g, err := diamond()
		if err != nil {
			log.Fatal(err)
		}
		net, err := core.Build(core.Config{
			Graph:     g,
			Protocol:  controlplane.ProtoCicero,
			Scheduler: sched,
			Cost:      protocol.Calibrated(),
			Jitter:    0.8,
			Seed:      seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		path := g.ShortestPath("h1", "h5")
		switches := g.SwitchesOnPath(path)
		times := map[string]simnet.Time{}
		for _, sw := range switches {
			sw := sw
			net.Switches[sw].Subscribe("h1", "h5", func(at simnet.Time) { times[sw] = at })
		}
		if _, err := net.RunFlows([]workload.Flow{{ID: 1, Src: "h1", Dst: "h5", SizeKB: 8}}, core.RunOptions{}); err != nil {
			log.Fatal(err)
		}
		bad := false
		for i := 0; i+1 < len(switches); i++ {
			if w := times[switches[i+1]] - times[switches[i]]; w > 0 {
				bad = true
				if w > worst {
					worst = w
				}
			}
		}
		if bad {
			violations++
		}
	}
	return violations, worst
}

var _ = openflow.Rule{} // keep the import for the rule type in docs
