// Multi-domain updates (the paper's Fig. 5 and §6.3): two server pods,
// each its own Cicero domain with an independent 4-member control plane,
// joined by an interconnect domain. A cross-pod flow's event is forwarded
// between domains and each control plane updates its own switches in
// parallel; a pod-local flow never leaves its domain.
//
//	go run ./examples/multidomain
package main

import (
	"fmt"
	"log"
	"time"

	"cicero"
)

func main() {
	topo, err := cicero.InterconnectedPods(2, 6, 1)
	if err != nil {
		log.Fatal(err)
	}
	net, err := cicero.New(cicero.Options{
		Topology:    topo,
		Controllers: 4,
		Domains:     3, // pod 0, pod 1, interconnect
		DomainOf:    cicero.ByPod(2, 2),
		RealCrypto:  true,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}

	flows := []cicero.Flow{
		// Pod-local: only domain 0 processes it.
		{ID: 1, Src: cicero.Host(0, 0, 0, 0), Dst: cicero.Host(0, 0, 3, 0), SizeKB: 128},
		// Cross-pod: domains 0, 1 and the interconnect domain all update
		// their switches, in parallel, from one forwarded event.
		{ID: 2, Src: cicero.Host(0, 0, 1, 0), Dst: cicero.Host(0, 1, 4, 0), SizeKB: 128, Start: 30 * time.Millisecond},
	}
	results, err := net.Run(flows)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("flow %d (%s -> %s): setup=%v completion=%v\n",
			r.Flow.ID, r.Flow.Src, r.Flow.Dst,
			r.SetupDelay.Round(time.Microsecond), r.Completion.Round(time.Microsecond))
	}

	fmt.Println("\nevents delivered per domain control plane:")
	for _, d := range net.Internal().Domains {
		name := fmt.Sprintf("pod-%d", d.Index)
		if d.Index == 2 {
			name = "interconnect"
		}
		fmt.Printf("  domain %-12s: %d (of 2 total events)\n", name, d.Controllers[0].EventsDelivered)
	}
	fmt.Println("\nthe pod-local event stayed in domain 0; the cross-pod event was")
	fmt.Println("forwarded once and processed by all three domains in parallel.")
}
