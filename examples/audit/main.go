// Auditable control plane (the paper's §7 future work, implemented):
// every controller keeps a hash-chained ledger of its decisions — events
// delivered in broadcast order and the exact bytes of every update it
// signed. An auditor collects the ledgers, verifies each chain, and
// cross-checks decisions: equivocation (signing different updates than
// the quorum) and history rewriting both surface with the culprit named.
//
//	go run ./examples/audit
package main

import (
	"fmt"
	"log"

	"cicero"
	"cicero/internal/audit"
)

func main() {
	topo, err := cicero.SinglePod(6, 2)
	if err != nil {
		log.Fatal(err)
	}
	net, err := cicero.New(cicero.Options{Topology: topo, Controllers: 4, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	flows, err := cicero.HadoopWorkload(topo, 80, 3)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := net.Run(flows); err != nil {
		log.Fatal(err)
	}

	ledgers := make(map[string][]audit.Record)
	for _, ctl := range net.Internal().Domains[0].Controllers {
		records := ctl.AuditRecords()
		if err := audit.Verify(records); err != nil {
			log.Fatalf("%s: chain verification failed: %v", ctl.ID(), err)
		}
		ledgers[string(ctl.ID())] = records
		fmt.Printf("%s: %d decisions, chain verified\n", ctl.ID(), len(records))
	}
	findings := audit.Audit(ledgers)
	fmt.Printf("\ncross-controller audit: %d findings (want 0 — all replicas agreed)\n", len(findings))

	// Now simulate what a compromised controller's ledger looks like:
	// it rewrites one signed update after the fact.
	evil := ledgers["dom0/ctl/2"]
	for i := range evil {
		if evil[i].Kind == audit.KindUpdate {
			evil[i].Canonical = []byte("what I actually signed is hidden")
			break
		}
	}
	findings = audit.Audit(ledgers)
	fmt.Printf("\nafter dom0/ctl/2 rewrites its history:\n")
	for _, f := range findings {
		fmt.Printf("  FINDING %s: suspects=%v (%s)\n", f.Subject, f.Suspects, f.Detail)
	}
}
