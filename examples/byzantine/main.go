// Byzantine fault tolerance (the paper's §2.2 threat model): a malicious
// controller — even one holding a genuine key share — cannot make a
// switch apply an update without a quorum of t = ⌊(n−1)/3⌋+1 shares, and
// PACKET_OUT injection is simply dropped. The crash-tolerant baseline,
// run side by side, accepts the same forged update instantly, which is
// the gap Cicero closes.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"

	"cicero"
	"cicero/internal/controlplane"
	"cicero/internal/core"
	"cicero/internal/openflow"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
)

// attacker is a network endpoint that only sends forged traffic.
type attacker struct{}

func (attacker) HandleMessage(simnet.NodeID, simnet.Message) {}

// forgedMod is the malicious update: reroute traffic for "victim-dst"
// into an attacker-controlled sink.
func forgedMod(target string) openflow.FlowMod {
	return openflow.FlowMod{Op: openflow.FlowAdd, Switch: target, Rule: openflow.Rule{
		Priority: 99,
		Match:    openflow.Match{Src: openflow.Wildcard, Dst: "victim-dst"},
		Action:   openflow.Action{Type: openflow.ActionOutput, NextHop: "attacker-sink"},
	}}
}

func main() {
	fmt.Println("=== Cicero (threshold quorum authentication) ===")
	attackCicero()
	fmt.Println("\n=== crash-tolerant baseline (no authentication) ===")
	attackCrashBaseline()
}

func attackCicero() {
	topo, err := cicero.SinglePod(3, 1)
	if err != nil {
		log.Fatal(err)
	}
	net, err := cicero.New(cicero.Options{
		Topology:    topo,
		Controllers: 4,
		RealCrypto:  true,
		Seed:        13,
	})
	if err != nil {
		log.Fatal(err)
	}
	inner := net.Internal()
	dom := inner.Domains[0]
	target := cicero.ToR(0, 0, 0)
	sw := inner.Switches[target]

	evil := simnet.NodeID("mallory")
	inner.Net.Register(evil, attacker{})
	mod := forgedMod(target)
	id := openflow.MsgID{Origin: "mallory", Seq: 1}

	// Attack 1: PACKET_OUT injection (the paper's DoS primitive).
	inner.Net.Send(evil, simnet.NodeID(target), openflow.PacketOut{
		ID: id, Switch: target, Src: "a", Dst: "b", Payload: "junk",
	}, 1500)

	// Attack 2: an INSIDER with one genuine key share signs the forged
	// update and replays its share under every index.
	canonical := openflow.CanonicalUpdateBytes(id, 0, []openflow.FlowMod{mod})
	share := inner.Scheme.SignShare(dom.Shares[3], canonical)
	raw := inner.Scheme.Params.PointBytes(share.Point)
	for idx := uint32(1); idx <= 4; idx++ {
		inner.Net.Send(evil, simnet.NodeID(target), protocol.MsgUpdate{
			UpdateID: id, Mods: []openflow.FlowMod{mod},
			From: "mallory", ShareIndex: idx, Share: raw,
		}, 256)
	}
	if _, err := inner.Sim.Run(); err != nil {
		log.Fatal(err)
	}
	_, installed := sw.Lookup("x", "victim-dst")
	fmt.Printf("forged route installed: %v (want false)\n", installed)
	fmt.Printf("switch rejected messages: %d\n", sw.UpdatesRejected)
	fmt.Println("one genuine share < quorum t=2: the aggregate never verifies")
}

func attackCrashBaseline() {
	topo, err := cicero.SinglePod(3, 1)
	if err != nil {
		log.Fatal(err)
	}
	inner, err := core.Build(core.Config{
		Graph:                topo,
		Protocol:             controlplane.ProtoCrash,
		ControllersPerDomain: 4,
		CryptoReal:           true,
		Seed:                 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	target := cicero.ToR(0, 0, 0)
	evil := simnet.NodeID("mallory")
	inner.Net.Register(evil, attacker{})
	inner.Net.Send(evil, simnet.NodeID(target), protocol.MsgUpdate{
		UpdateID: openflow.MsgID{Origin: "mallory", Seq: 1},
		Mods:     []openflow.FlowMod{forgedMod(target)},
	}, 256)
	if _, err := inner.Sim.Run(); err != nil {
		log.Fatal(err)
	}
	_, installed := inner.Switches[target].Lookup("x", "victim-dst")
	fmt.Printf("forged route installed: %v — a single malicious controller owns the data plane\n", installed)
}
