package cicero_test

import (
	"testing"
	"time"

	"cicero"
)

func TestPublicAPIQuickstart(t *testing.T) {
	topo, err := cicero.SinglePod(4, 2)
	if err != nil {
		t.Fatalf("SinglePod: %v", err)
	}
	net, err := cicero.New(cicero.Options{Topology: topo, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	results, err := net.Run([]cicero.Flow{
		{ID: 1, Src: cicero.Host(0, 0, 0, 0), Dst: cicero.Host(0, 0, 2, 1), SizeKB: 64},
		{ID: 2, Src: cicero.Host(0, 0, 0, 1), Dst: cicero.Host(0, 0, 2, 1), SizeKB: 64, Start: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("completed %d flows, want 2", len(results))
	}
	if !results[1].RuleReused {
		t.Error("second same-rack flow should reuse rules")
	}
	stats := net.Stats()
	if stats.UpdatesApplied == 0 || stats.EventsDelivered == 0 {
		t.Errorf("missing protocol activity: %+v", stats)
	}
	if stats.UpdatesRejected != 0 {
		t.Errorf("honest run rejected %d updates", stats.UpdatesRejected)
	}
}

func TestPublicAPIProtocols(t *testing.T) {
	topo, err := cicero.SinglePod(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		proto cicero.Protocol
		ctls  int
	}{
		{"centralized", cicero.Centralized, 1},
		{"crash", cicero.CrashTolerant, 4},
		{"cicero", cicero.Cicero, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net, err := cicero.New(cicero.Options{
				Topology: topo, Protocol: tc.proto, Controllers: tc.ctls, Seed: 2,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			results, err := net.Run([]cicero.Flow{
				{ID: 1, Src: cicero.Host(0, 0, 0, 0), Dst: cicero.Host(0, 0, 1, 0), SizeKB: 32},
			})
			if err != nil || len(results) != 1 {
				t.Fatalf("Run: %v (%d results)", err, len(results))
			}
		})
	}
}

func TestPublicAPITeardownMode(t *testing.T) {
	topo, err := cicero.SinglePod(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := cicero.New(cicero.Options{Topology: topo, PairRules: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := cicero.Host(0, 0, 0, 0), cicero.Host(0, 0, 1, 0)
	results, err := net.RunTeardown([]cicero.Flow{
		{ID: 1, Src: src, Dst: dst, SizeKB: 32},
		{ID: 2, Src: src, Dst: dst, SizeKB: 32, Start: 400 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.RuleReused {
			t.Errorf("flow %d reused rules in teardown mode", r.Flow.ID)
		}
	}
}

func TestPublicAPIMultiDC(t *testing.T) {
	topo, err := cicero.MultiDC(2, 1, 2)
	if err != nil {
		t.Fatalf("MultiDC: %v", err)
	}
	net, err := cicero.New(cicero.Options{
		Topology: topo,
		Domains:  3,
		DomainOf: cicero.ByPod(1, 2),
		Seed:     4,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	flows, err := cicero.WebWorkload(topo, 40, 4)
	if err != nil {
		t.Fatalf("WebWorkload: %v", err)
	}
	results, err := net.Run(flows)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 40 {
		t.Fatalf("completed %d flows, want 40", len(results))
	}
}

func TestPublicAPIValidation(t *testing.T) {
	if _, err := cicero.New(cicero.Options{}); err == nil {
		t.Error("nil topology accepted")
	}
	topo, _ := cicero.SinglePod(2, 1)
	if _, err := cicero.New(cicero.Options{Topology: topo, Controllers: 3}); err == nil {
		t.Error("cicero with 3 controllers accepted")
	}
}
