// Command cicero-live runs the live-runtime benchmarks: fig-11-style
// single-flow and multi-flow update workloads executed on the wall-clock
// backends (in-process mailboxes or localhost TCP), with real threshold
// crypto, cross-checked against a simnet reference run of the identical
// flow sequence (installed flow tables and audit digests must match).
//
// Usage:
//
//	cicero-live -backend=inproc [-quick] [-out BENCH_live.json]
//	cicero-live -backend=tcp -quick
//	cicero-live -backend=all -flows 25 -multiflows 40 -seed 2020
//
// The process exits nonzero if any cross-check fails, so CI smoke runs
// double as correctness gates. Latency numbers are wall-clock and
// host-dependent; the cross-checked digests are not.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cicero/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		backend    = flag.String("backend", "inproc", "live backend: inproc, tcp, or all")
		flows      = flag.Int("flows", 0, "sequential single-flow updates (default 25, or 6 with -quick)")
		multiflows = flag.Int("multiflows", 0, "concurrent multi-flow updates (default 40, or 8 with -quick)")
		seed       = flag.Int64("seed", 2020, "pair-selection and reference-run seed")
		quick      = flag.Bool("quick", false, "shrink topology and flow counts for a fast pass")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-leg completion timeout")
		out        = flag.String("out", "", "write the JSON report to this file (default stdout only)")
		batch      = flag.Int("batch", 0, "batch size (>1 enables batched ordering and batch-amortized signing)")
		batchDelay = flag.Duration("batch-delay", 0, "max wait before a partial batch is ordered (default 5ms)")
	)
	flag.Parse()

	backends := []string{*backend}
	if *backend == "all" {
		backends = []string{"inproc", "tcp"}
	}
	opt := experiments.LiveOptions{
		SingleFlows: *flows,
		MultiFlows:  *multiflows,
		Quick:       *quick,
		Seed:        *seed,
		Timeout:     *timeout,
		BatchSize:   *batch,
		BatchDelay:  *batchDelay,
	}
	report, err := experiments.RunLiveAll(opt, backends)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-live: %v\n", err)
		return 1
	}
	doc := report.JSON()
	os.Stdout.Write(doc)
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cicero-live: write %s: %v\n", *out, err)
			return 1
		}
	}
	if !report.Passed() {
		fmt.Fprintln(os.Stderr, "cicero-live: CROSS-CHECK FAILED: live backend diverged from the simnet reference")
		return 1
	}
	fmt.Fprintln(os.Stderr, "cicero-live: all cross-checks passed")
	return 0
}
