// Command cicero-chaos runs deterministic fault-injection campaigns
// against the Cicero protocol and checks online invariants (consistency,
// blackhole/loop freedom, BFT agreement, no-forged-rule). Any failing seed
// is replayable bit-identically.
//
// Usage:
//
//	cicero-chaos -profile mixed -seeds 200            # campaign
//	cicero-chaos -profile mixed -replay 17            # replay one seed
//	cicero-chaos -profile byzantine -canary -seeds 10 # prove the checker
//
// Exit status is 1 when any invariant violation (or run error) occurred,
// 0 otherwise — except with -canary, where catching the planted mutation
// is the expected outcome and exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cicero/internal/chaos"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		profileName = flag.String("profile", "mixed", "links | crash | partitions | byzantine | mixed")
		seeds       = flag.Int("seeds", 50, "number of seeds (starting at -seed)")
		seedStart   = flag.Int64("seed", 1, "first seed")
		flows       = flag.Int("flows", 0, "flows per seed (0 = profile default)")
		budgetMS    = flag.Int("budget-ms", 0, "virtual-time budget per seed in ms (0 = profile default)")
		racks       = flag.Int("racks", 0, "racks per pod (0 = profile default)")
		controllers = flag.Int("controllers", 0, "controllers per domain (0 = profile default)")
		workers     = flag.Int("workers", 0, "parallel seeds (0 = GOMAXPROCS)")
		replay      = flag.Int64("replay", -1, "replay a single seed with full trace output")
		canary      = flag.Bool("canary", false, "plant the verification-bypass mutation (the checker must catch it)")
		verbose     = flag.Bool("v", false, "per-seed progress lines")
	)
	flag.Parse()

	p, err := chaos.ProfileByName(*profileName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *flows > 0 {
		p.Flows = *flows
	}
	if *budgetMS > 0 {
		p.SimBudget = time.Duration(*budgetMS) * time.Millisecond
	}
	if *racks > 0 {
		p.RacksPerPod = *racks
	}
	if *controllers > 0 {
		p.Controllers = *controllers
	}
	p.CanarySkipVerify = *canary

	if *replay >= 0 {
		return replaySeed(p, *replay, *canary)
	}

	c := chaos.Campaign{
		Profile: p,
		Seeds:   chaos.Seeds(*seedStart, *seeds),
		Workers: *workers,
	}
	if *verbose {
		c.Progress = func(done, total int, res chaos.SeedResult) {
			status := "ok"
			if len(res.Violations) > 0 {
				status = fmt.Sprintf("VIOLATIONS=%d", len(res.Violations))
			} else if res.Err != "" {
				status = "err=" + res.Err
			}
			fmt.Printf("[%d/%d] seed=%d flows=%d/%d trace=%s %s\n",
				done, total, res.Seed, res.FlowsDone, res.FlowsTotal, res.TraceHash[:12], status)
		}
	}
	start := time.Now()
	res := c.Run()
	fmt.Printf("%s wall=%v\n", res.Summary(), time.Since(start).Round(time.Millisecond))
	res.Injected.Table("injected faults").Render(os.Stdout)
	for _, sr := range res.Results {
		for _, v := range sr.Violations {
			fmt.Printf("  %s (replay: cicero-chaos -profile %s%s -replay %d)\n",
				v, p.Name, canaryFlag(*canary), sr.Seed)
		}
	}
	if *canary {
		// The campaign planted a mutation; finding it means the invariant
		// plane works.
		if res.Violations == 0 {
			fmt.Println("CANARY MISSED: verification bypass was not detected")
			return 1
		}
		fmt.Printf("canary caught on %d seed(s)\n", len(res.FailingSeeds))
		return 0
	}
	if res.Violations > 0 || len(res.ErrSeeds) > 0 {
		return 1
	}
	return 0
}

// replaySeed reruns one seed with the trace retained and prints every
// violation with its minimal sub-trace, then the trace hash for
// bit-identical comparison against the original campaign run.
func replaySeed(p chaos.Profile, seed int64, canary bool) int {
	res := chaos.RunSeed(p, seed)
	fmt.Printf("seed=%d profile=%s flows=%d/%d applied=%d rejected=%d events=%d trace=%s\n",
		res.Seed, res.Profile, res.FlowsDone, res.FlowsTotal,
		res.UpdatesApplied, res.UpdatesRejected, res.SimEvents, res.TraceHash)
	fmt.Printf("net: sent=%d delivered=%d dropped=%d (crash=%d partition=%d injected=%d)\n",
		res.Net.Sent, res.Net.Delivered, res.Net.Dropped,
		res.Net.DroppedCrash, res.Net.DroppedPartition, res.Net.DroppedInjected)
	if res.Err != "" {
		fmt.Printf("run error: %s\n", res.Err)
	}
	if len(res.Violations) == 0 {
		fmt.Println("no invariant violations")
		if canary {
			fmt.Println("CANARY MISSED: verification bypass was not detected")
			return 1
		}
		return 0
	}
	for i, v := range res.Violations {
		fmt.Printf("\nviolation %d: %s\n", i+1, v)
		for _, e := range v.Trace {
			fmt.Printf("    %s\n", e)
		}
	}
	if canary {
		return 0
	}
	return 1
}

func canaryFlag(on bool) string {
	if on {
		return " -canary"
	}
	return ""
}
