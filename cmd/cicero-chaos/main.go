// Command cicero-chaos runs deterministic fault-injection campaigns
// against the Cicero protocol and checks online invariants (consistency,
// blackhole/loop freedom, BFT agreement, no-forged-rule). Any failing seed
// is replayable bit-identically.
//
// Usage:
//
//	cicero-chaos -profile mixed -seeds 200            # campaign
//	cicero-chaos -profile mixed -replay 17            # replay one seed
//	cicero-chaos -profile byzantine -canary -seeds 10 # prove the checker
//	cicero-chaos -profile mixed -live inproc -seeds 3 # wall-clock faults
//
// With -live, the same fault families run wall-clock on a live backend
// (in-process channels or localhost TCP) and the invariant plane shifts to
// convergence checks: crashed nodes restart and must provably
// resynchronize, and the quiesced state must match a fault-free simnet
// reference. Live runs are not bit-reproducible; seeds fix what is
// injected, not how it interleaves, so there is no -replay for them.
//
// Exit status is 1 when any invariant violation (or run error) occurred,
// 0 otherwise — except with -canary, where catching the planted mutation
// is the expected outcome and exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cicero/internal/chaos"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		profileName = flag.String("profile", "mixed", "links | crash | partitions | byzantine | metadata | mixed")
		seeds       = flag.Int("seeds", 50, "number of seeds (starting at -seed)")
		seedStart   = flag.Int64("seed", 1, "first seed")
		flows       = flag.Int("flows", 0, "flows per seed (0 = profile default)")
		budgetMS    = flag.Int("budget-ms", 0, "virtual-time budget per seed in ms (0 = profile default)")
		racks       = flag.Int("racks", 0, "racks per pod (0 = profile default)")
		controllers = flag.Int("controllers", 0, "controllers per domain (0 = profile default)")
		workers     = flag.Int("workers", 0, "parallel seeds (0 = GOMAXPROCS)")
		replay      = flag.Int64("replay", -1, "replay a single seed with full trace output")
		canary      = flag.Bool("canary", false, "plant the verification-bypass mutation (the checker must catch it)")
		verbose     = flag.Bool("v", false, "per-seed progress lines")
		live        = flag.String("live", "", "run wall-clock on a live backend: inproc | tcp (empty = simulator)")
		flowWindow  = flag.Int("flow-window-ms", 0, "live: wall-clock fault/flow window in ms (0 = default)")
		drainSecs   = flag.Int("drain-s", 0, "live: drain/convergence timeout in seconds (0 = default)")
		batch       = flag.Int("batch", 0, "batch size (>1 runs the batched hot path under the campaign)")
		batchDelay  = flag.Duration("batch-delay", 0, "max wait before a partial batch is ordered (default 5ms)")
	)
	flag.Parse()

	p, err := chaos.ProfileByName(*profileName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *flows > 0 {
		p.Flows = *flows
	}
	if *budgetMS > 0 {
		p.SimBudget = time.Duration(*budgetMS) * time.Millisecond
	}
	if *racks > 0 {
		p.RacksPerPod = *racks
	}
	if *controllers > 0 {
		p.Controllers = *controllers
	}
	p.CanarySkipVerify = *canary
	if p.Metadata {
		// The metadata profile's canary is the store-verification bypass
		// (planted rollback/forgery/freeze must be caught), not the
		// rule-check skip.
		p.CanarySkipVerify = false
		p.CanaryMetaBypass = *canary
	}
	p.BatchSize = *batch
	p.BatchDelay = *batchDelay

	if *live != "" {
		if *replay >= 0 {
			fmt.Fprintln(os.Stderr, "cicero-chaos: -replay is simulator-only (live runs are not bit-reproducible)")
			return 2
		}
		opt := chaos.LiveOptions{
			Backend:      *live,
			FlowWindow:   time.Duration(*flowWindow) * time.Millisecond,
			DrainTimeout: time.Duration(*drainSecs) * time.Second,
		}
		return runLive(p, opt, *seedStart, *seeds, *canary, *verbose)
	}

	if *replay >= 0 {
		return replaySeed(p, *replay, *canary)
	}

	c := chaos.Campaign{
		Profile: p,
		Seeds:   chaos.Seeds(*seedStart, *seeds),
		Workers: *workers,
	}
	if *verbose {
		c.Progress = func(done, total int, res chaos.SeedResult) {
			status := "ok"
			if len(res.Violations) > 0 {
				status = fmt.Sprintf("VIOLATIONS=%d", len(res.Violations))
			} else if res.Err != "" {
				status = "err=" + res.Err
			}
			fmt.Printf("[%d/%d] seed=%d flows=%d/%d trace=%s %s\n",
				done, total, res.Seed, res.FlowsDone, res.FlowsTotal, res.TraceHash[:12], status)
		}
	}
	start := time.Now()
	res := c.Run()
	fmt.Printf("%s wall=%v\n", res.Summary(), time.Since(start).Round(time.Millisecond))
	res.Injected.Table("injected faults").Render(os.Stdout)
	for _, sr := range res.Results {
		for _, v := range sr.Violations {
			fmt.Printf("  %s (replay: cicero-chaos -profile %s%s -replay %d)\n",
				v, p.Name, canaryFlag(*canary), sr.Seed)
		}
	}
	if *canary {
		// The campaign planted a mutation; finding it means the invariant
		// plane works.
		if res.Violations == 0 {
			fmt.Println("CANARY MISSED: verification bypass was not detected")
			return 1
		}
		fmt.Printf("canary caught on %d seed(s)\n", len(res.FailingSeeds))
		return 0
	}
	if res.Violations > 0 || len(res.ErrSeeds) > 0 {
		return 1
	}
	return 0
}

// replaySeed reruns one seed with the trace retained and prints every
// violation with its minimal sub-trace, then the trace hash for
// bit-identical comparison against the original campaign run.
func replaySeed(p chaos.Profile, seed int64, canary bool) int {
	res := chaos.RunSeed(p, seed)
	fmt.Printf("seed=%d profile=%s flows=%d/%d applied=%d rejected=%d events=%d trace=%s\n",
		res.Seed, res.Profile, res.FlowsDone, res.FlowsTotal,
		res.UpdatesApplied, res.UpdatesRejected, res.SimEvents, res.TraceHash)
	fmt.Printf("net: sent=%d delivered=%d dropped=%d (crash=%d partition=%d injected=%d)\n",
		res.Net.Sent, res.Net.Delivered, res.Net.Dropped,
		res.Net.DroppedCrash, res.Net.DroppedPartition, res.Net.DroppedInjected)
	if res.Err != "" {
		fmt.Printf("run error: %s\n", res.Err)
	}
	if len(res.Violations) == 0 {
		fmt.Println("no invariant violations")
		if canary {
			fmt.Println("CANARY MISSED: verification bypass was not detected")
			return 1
		}
		return 0
	}
	for i, v := range res.Violations {
		fmt.Printf("\nviolation %d: %s\n", i+1, v)
		for _, e := range v.Trace {
			fmt.Printf("    %s\n", e)
		}
	}
	if canary {
		return 0
	}
	return 1
}

// runLive executes seeds sequentially on a live backend (wall-clock runs
// contend for the same cores, so parallel seeds would perturb each other)
// and applies the same exit-code semantics as the campaign.
func runLive(p chaos.Profile, opt chaos.LiveOptions, seedStart int64, seeds int, canary bool, verbose bool) int {
	violations, errs, caught := 0, 0, 0
	start := time.Now()
	for i := 0; i < seeds; i++ {
		o := opt
		o.Seed = seedStart + int64(i)
		res := chaos.RunLiveSeed(p, o)
		violations += len(res.Violations)
		if res.Err != "" {
			errs++
		}
		if verbose || len(res.Violations) > 0 || res.Err != "" {
			status := "ok"
			if len(res.Violations) > 0 {
				status = fmt.Sprintf("VIOLATIONS=%d", len(res.Violations))
			} else if res.Err != "" {
				status = "err=" + res.Err
			}
			fmt.Printf("[%d/%d] live=%s seed=%d flows=%d/%d ctl-restarts=%d(recovered %d) sw-restarts=%d tableMatch=%v wall=%v %s\n",
				i+1, seeds, res.Backend, res.Seed, res.FlowsDone, res.FlowsTotal,
				res.CtlRestarts, res.CtlRecovered, res.SwitchRestarts, res.TableMatch,
				res.Wall.Round(time.Millisecond), status)
		}
		for _, v := range res.Violations {
			fmt.Printf("  %s\n", v)
			switch v.Invariant {
			case chaos.InvNoForgedRule, chaos.InvBatchProof,
				chaos.InvMetaRollback, chaos.InvMetaForged, chaos.InvStalePolicy:
				caught++
			}
		}
	}
	fmt.Printf("live %s: profile=%s seeds=%d violations=%d errs=%d wall=%v\n",
		opt.Backend, p.Name, seeds, violations, errs, time.Since(start).Round(time.Millisecond))
	if canary {
		if caught == 0 {
			fmt.Println("CANARY MISSED: verification bypass was not detected on the live backend")
			return 1
		}
		fmt.Printf("canary caught: %d violations\n", caught)
		return 0
	}
	if violations > 0 || errs > 0 {
		return 1
	}
	return 0
}

func canaryFlag(on bool) string {
	if on {
		return " -canary"
	}
	return ""
}
