// Command cicero-keygen demonstrates the threshold key machinery end to
// end: a dealerless distributed key generation among n controllers, a
// threshold-signed message verified against the group public key, and a
// membership change (resharing) that rotates every share while keeping
// the public key — the exact lifecycle Cicero's control plane runs.
//
// Usage:
//
//	cicero-keygen [-n 4] [-grow 5] [-params fast|std]
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/dkg"
	"cicero/internal/tcrypto/pairing"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n      = flag.Int("n", 4, "initial control-plane size (>= 4)")
		grow   = flag.Int("grow", 5, "control-plane size after the membership change")
		params = flag.String("params", "fast", "pairing parameters: fast (254-bit) or std (512-bit)")
	)
	flag.Parse()
	if *n < 4 || *grow < 4 {
		fmt.Fprintln(os.Stderr, "cicero-keygen: control plane sizes must be >= 4 (the paper's minimum)")
		return 2
	}
	var p *pairing.Params
	switch *params {
	case "fast":
		p = pairing.Fast254()
	case "std":
		p = pairing.Std512()
	default:
		fmt.Fprintf(os.Stderr, "cicero-keygen: unknown -params %q\n", *params)
		return 2
	}
	scheme := bls.NewScheme(p)
	t0 := controlplane.CiceroQuorum(*n)

	start := time.Now()
	gk, shares, err := dkg.Run(scheme, rand.Reader, t0, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: DKG: %v\n", err)
		return 1
	}
	fmt.Printf("DKG: n=%d t=%d in %v\n", *n, t0, time.Since(start).Round(time.Millisecond))
	fmt.Printf("group public key: %x...\n", p.PointBytes(gk.PK.Point)[:16])

	msg := []byte("flow-mod tor-7: dst=h42 -> output:edge-2")
	sigShares := make([]bls.SignatureShare, t0)
	for i := 0; i < t0; i++ {
		sigShares[i] = scheme.SignShare(shares[i], msg)
	}
	sig, err := scheme.Combine(gk, sigShares)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: combine: %v\n", err)
		return 1
	}
	fmt.Printf("threshold signature from %d/%d shares verifies: %v\n",
		t0, *n, scheme.Verify(gk.PK, msg, sig))

	tNew := controlplane.CiceroQuorum(*grow)
	start = time.Now()
	newGK, newShares, err := dkg.RunReshare(scheme, rand.Reader, gk, shares, tNew, *grow)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: reshare: %v\n", err)
		return 1
	}
	fmt.Printf("reshare to n=%d t=%d in %v\n", *grow, tNew, time.Since(start).Round(time.Millisecond))
	fmt.Printf("public key unchanged: %v\n", newGK.PK.Point.Equal(gk.PK.Point))

	newSigShares := make([]bls.SignatureShare, tNew)
	for i := 0; i < tNew; i++ {
		newSigShares[i] = scheme.SignShare(newShares[i], msg)
	}
	newSig, err := scheme.Combine(newGK, newSigShares)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: combine post-reshare: %v\n", err)
		return 1
	}
	fmt.Printf("post-reshare signature verifies under ORIGINAL key: %v\n",
		scheme.Verify(gk.PK, msg, newSig))

	// Old shares are dead: mixing one into a new-epoch quorum fails.
	stale := append([]bls.SignatureShare(nil), newSigShares[:tNew-1]...)
	stale = append(stale, scheme.SignShare(bls.KeyShare{Index: newShares[tNew-1].Index, Scalar: shares[0].Scalar}, msg))
	staleSig, err := scheme.Combine(newGK, stale)
	if err == nil {
		fmt.Printf("stale-share quorum rejected: %v\n", !scheme.Verify(gk.PK, msg, staleSig))
	}
	return 0
}
