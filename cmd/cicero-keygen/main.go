// Command cicero-keygen demonstrates the threshold key machinery end to
// end: a dealerless distributed key generation among n controllers, a
// threshold-signed message verified against the group public key, and a
// membership change (resharing) that rotates every share while keeping
// the public key — the exact lifecycle Cicero's control plane runs.
//
// It also mints and checks the deployment's root of trust: -genesis
// writes a signed root-metadata genesis file (the TUF-style trust anchor
// internal/metarepo stores bootstrap from — the only thing a
// provisioning bundle needs to carry), and -verify-genesis validates one
// from nothing but its own contents.
//
// Usage:
//
//	cicero-keygen [-n 4] [-grow 5] [-params fast|std]
//	cicero-keygen -genesis genesis.json [-n 4] [-genesis-ttl 720h]
//	cicero-keygen -verify-genesis genesis.json [-params fast|std]
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/metarepo"
	"cicero/internal/tcrypto/bls"
	"cicero/internal/tcrypto/dkg"
	"cicero/internal/tcrypto/pairing"
	"cicero/internal/tcrypto/pki"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n          = flag.Int("n", 4, "initial control-plane size (>= 4)")
		grow       = flag.Int("grow", 5, "control-plane size after the membership change")
		params     = flag.String("params", "fast", "pairing parameters: fast (254-bit) or std (512-bit)")
		genesis    = flag.String("genesis", "", "write a signed root-metadata genesis file to this path")
		genesisTTL = flag.Duration("genesis-ttl", 30*24*time.Hour, "root document lifetime for -genesis")
		verifyGen  = flag.String("verify-genesis", "", "verify a root-metadata genesis file and exit")
	)
	flag.Parse()
	if *n < 4 || *grow < 4 {
		fmt.Fprintln(os.Stderr, "cicero-keygen: control plane sizes must be >= 4 (the paper's minimum)")
		return 2
	}
	var p *pairing.Params
	switch *params {
	case "fast":
		p = pairing.Fast254()
	case "std":
		p = pairing.Std512()
	default:
		fmt.Fprintf(os.Stderr, "cicero-keygen: unknown -params %q\n", *params)
		return 2
	}
	scheme := bls.NewScheme(p)
	t0 := controlplane.CiceroQuorum(*n)

	if *verifyGen != "" {
		return verifyGenesis(scheme, *verifyGen)
	}

	start := time.Now()
	gk, shares, err := dkg.Run(scheme, rand.Reader, t0, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: DKG: %v\n", err)
		return 1
	}
	fmt.Printf("DKG: n=%d t=%d in %v\n", *n, t0, time.Since(start).Round(time.Millisecond))
	fmt.Printf("group public key: %x...\n", p.PointBytes(gk.PK.Point)[:16])

	msg := []byte("flow-mod tor-7: dst=h42 -> output:edge-2")
	sigShares := make([]bls.SignatureShare, t0)
	for i := 0; i < t0; i++ {
		sigShares[i] = scheme.SignShare(shares[i], msg)
	}
	sig, err := scheme.Combine(gk, sigShares)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: combine: %v\n", err)
		return 1
	}
	fmt.Printf("threshold signature from %d/%d shares verifies: %v\n",
		t0, *n, scheme.Verify(gk.PK, msg, sig))

	if *genesis != "" {
		if rc := writeGenesis(scheme, gk, shares[:t0], *n, t0, *genesisTTL, *genesis); rc != 0 {
			return rc
		}
	}

	tNew := controlplane.CiceroQuorum(*grow)
	start = time.Now()
	newGK, newShares, err := dkg.RunReshare(scheme, rand.Reader, gk, shares, tNew, *grow)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: reshare: %v\n", err)
		return 1
	}
	fmt.Printf("reshare to n=%d t=%d in %v\n", *grow, tNew, time.Since(start).Round(time.Millisecond))
	fmt.Printf("public key unchanged: %v\n", newGK.PK.Point.Equal(gk.PK.Point))

	newSigShares := make([]bls.SignatureShare, tNew)
	for i := 0; i < tNew; i++ {
		newSigShares[i] = scheme.SignShare(newShares[i], msg)
	}
	newSig, err := scheme.Combine(newGK, newSigShares)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: combine post-reshare: %v\n", err)
		return 1
	}
	fmt.Printf("post-reshare signature verifies under ORIGINAL key: %v\n",
		scheme.Verify(gk.PK, msg, newSig))

	// Old shares are dead: mixing one into a new-epoch quorum fails.
	stale := append([]bls.SignatureShare(nil), newSigShares[:tNew-1]...)
	stale = append(stale, scheme.SignShare(bls.KeyShare{Index: newShares[tNew-1].Index, Scalar: shares[0].Scalar}, msg))
	staleSig, err := scheme.Combine(newGK, stale)
	if err == nil {
		fmt.Printf("stale-share quorum rejected: %v\n", !scheme.Verify(gk.PK, msg, staleSig))
	}
	return 0
}

// writeGenesis mints the deployment's root of trust: per-controller
// Ed25519 role keys delegated by a version-1 root document, threshold-
// signed with the DKG group key, serialized with the public key material
// needed to verify it from nothing. The file round-trips through the
// verifier before success is reported.
func writeGenesis(scheme *bls.Scheme, gk *bls.GroupKey, shares []bls.KeyShare, n, quorum int, ttl time.Duration, path string) int {
	controllers := make([]*pki.KeyPair, n)
	for i := range controllers {
		kp, err := pki.NewKeyPair(rand.Reader, pki.Identity(fmt.Sprintf("dom0/ctl/%d", i+1)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "cicero-keygen: role key: %v\n", err)
			return 1
		}
		controllers[i] = kp
	}
	root := metarepo.GenesisRoot(quorum, controllers, time.Now().UnixNano(), int64(ttl))
	env, err := metarepo.SignRootDirect(scheme, gk, shares, root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: sign genesis root: %v\n", err)
		return 1
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: %v\n", err)
		return 1
	}
	if err := metarepo.EncodeGenesis(f, scheme, gk, env); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "cicero-keygen: encode genesis: %v\n", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: %v\n", err)
		return 1
	}
	fmt.Printf("wrote genesis root v%d (quorum %d, %d role keys, expires %s) to %s\n",
		root.Version, quorum, n, time.Unix(0, root.ExpiresNS).Format(time.RFC3339), path)
	return verifyGenesis(scheme, path)
}

// verifyGenesis validates a genesis file from nothing but its contents:
// the group key reconstructs from its public material and a fresh trust
// store must accept the root envelope under it.
func verifyGenesis(scheme *bls.Scheme, path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: %v\n", err)
		return 1
	}
	defer f.Close()
	gk, env, err := metarepo.DecodeGenesis(f, scheme)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: %v\n", err)
		return 1
	}
	st := metarepo.NewStore(scheme, gk.PK, func() int64 { return time.Now().UnixNano() })
	if err := st.Apply(env); err != nil {
		fmt.Fprintf(os.Stderr, "cicero-keygen: genesis root rejected: %v\n", err)
		return 1
	}
	root := st.Root()
	if root == nil {
		fmt.Fprintln(os.Stderr, "cicero-keygen: store adopted no root")
		return 1
	}
	fmt.Printf("genesis verifies: root v%d, t=%d/%d, expires %s\n",
		root.Version, gk.T, gk.N, time.Unix(0, root.ExpiresNS).Format(time.RFC3339))
	for _, role := range []string{"targets", "snapshot", "timestamp"} {
		d := root.Roles[role]
		fmt.Printf("  role %-9s threshold %d over %d keys\n", role, d.Threshold, len(d.Keys))
	}
	return 0
}
