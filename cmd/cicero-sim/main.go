// Command cicero-sim runs an ad-hoc Cicero deployment: choose a topology,
// protocol, aggregation mode, domain layout and workload from flags, and
// get a flow-completion summary plus protocol counters.
//
// Usage:
//
//	cicero-sim -topology pod -protocol cicero -controllers 4 -flows 1000
//	cicero-sim -topology multidc -dcs 3 -domains-per-pod -workload webserver
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/core"
	"cicero/internal/metrics"
	"cicero/internal/protocol"
	"cicero/internal/simnet"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		topo        = flag.String("topology", "pod", "pod | pods2 | multidc")
		proto       = flag.String("protocol", "cicero", "centralized | crash | cicero")
		agg         = flag.String("aggregation", "switch", "switch | controller")
		controllers = flag.Int("controllers", 4, "controllers per domain")
		racks       = flag.Int("racks", 12, "racks per pod")
		dcs         = flag.Int("dcs", 3, "data centers (multidc)")
		domains     = flag.Bool("domains-per-pod", false, "one Cicero domain per pod (default single domain)")
		wl          = flag.String("workload", "hadoop", "hadoop | webserver")
		flows       = flag.Int("flows", 1000, "number of flows")
		seed        = flag.Int64("seed", 1, "simulation seed")
		teardown    = flag.Bool("teardown", false, "unamortized setup/teardown mode")
		realCrypto  = flag.Bool("real-crypto", false, "execute real BLS/Ed25519 operations")
	)
	flag.Parse()

	fab := topology.DefaultFabricConfig()
	fab.RacksPerPod = *racks
	fab.HostsPerRack = 2

	var (
		g          *topology.Graph
		err        error
		numDomains = 1
		domainOf   func(n *topology.Node) int
	)
	switch *topo {
	case "pod":
		g, err = topology.BuildSinglePod(fab)
	case "pods2":
		g, err = topology.BuildInterconnectedPods(topology.InterconnectPodsConfig{
			Fabric: fab, Pods: 2, InterconnectSwitches: 4,
			EdgeInterconnect: 60 * time.Microsecond,
		})
		if *domains {
			numDomains = 3
			domainOf = core.ByPod(2, 2)
		}
	case "multidc":
		mdc := topology.DefaultMultiDCConfig()
		mdc.Fabric = fab
		mdc.DataCenters = *dcs
		mdc.PodsPerDC = 2
		g, err = topology.BuildMultiDC(mdc)
		if *domains {
			numDomains = *dcs*2 + 1
			domainOf = core.ByPod(2, *dcs*2)
		}
	default:
		fmt.Fprintf(os.Stderr, "cicero-sim: unknown topology %q\n", *topo)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-sim: build topology: %v\n", err)
		return 1
	}

	var protoVal controlplane.Protocol
	switch *proto {
	case "centralized":
		protoVal = controlplane.ProtoCentralized
	case "crash":
		protoVal = controlplane.ProtoCrash
	case "cicero":
		protoVal = controlplane.ProtoCicero
	default:
		fmt.Fprintf(os.Stderr, "cicero-sim: unknown protocol %q\n", *proto)
		return 2
	}
	aggVal := controlplane.AggSwitch
	if *agg == "controller" {
		aggVal = controlplane.AggController
	}
	mixName := workload.Hadoop
	if *wl == "webserver" {
		mixName = workload.WebServer
	}
	mix, err := workload.MixFor(mixName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-sim: %v\n", err)
		return 1
	}

	n, err := core.Build(core.Config{
		Graph:                g,
		Protocol:             protoVal,
		Aggregation:          aggVal,
		ControllersPerDomain: *controllers,
		NumDomains:           numDomains,
		DomainOf:             domainOf,
		PairRules:            *teardown,
		Cost:                 protocol.Calibrated(),
		CryptoReal:           *realCrypto,
		Seed:                 *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-sim: build: %v\n", err)
		return 1
	}
	trace, err := workload.Generate(g, workload.Config{
		Mix: mix, Flows: *flows, MeanInterarrival: 4 * time.Millisecond, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-sim: workload: %v\n", err)
		return 1
	}
	start := time.Now()
	results, err := n.RunFlows(trace, core.RunOptions{Teardown: *teardown})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-sim: run: %v\n", err)
		return 1
	}

	var completion, setup metrics.Samples
	reused := 0
	for _, r := range results {
		completion.AddDuration(r.Completion)
		setup.AddDuration(r.SetupDelay)
		if r.RuleReused {
			reused++
		}
	}
	fmt.Printf("topology=%s protocol=%s agg=%s domains=%d controllers/domain=%d switches=%d\n",
		*topo, protoVal, *agg, numDomains, *controllers, len(n.Switches))
	fmt.Printf("flows=%d completed=%d reused-rules=%d wall=%v sim-time=%v\n",
		len(trace), len(results), reused, time.Since(start).Round(time.Millisecond), n.Sim.Now().Round(time.Millisecond))
	fmt.Printf("completion: %s\n", completion.Summary())
	fmt.Printf("setup:      %s\n", setup.Summary())

	var events, updates, acks uint64
	for _, d := range n.Domains {
		for _, ctl := range d.Controllers {
			events += ctl.EventsDelivered
			updates += ctl.UpdatesSigned
			acks += ctl.AcksReceived
		}
	}
	var applied, rejected uint64
	var cpu time.Duration
	for id, sw := range n.Switches {
		applied += sw.UpdatesApplied
		rejected += sw.UpdatesRejected
		cpu += n.Net.BusyTotal(simnet.NodeID(id))
	}
	fmt.Printf("control plane: events-delivered=%d updates-signed=%d acks=%d\n", events, updates, acks)
	fmt.Printf("data plane:    updates-applied=%d rejected=%d switch-cpu=%v\n",
		applied, rejected, cpu.Round(time.Millisecond))
	fmt.Printf("network:       %v\n", n.Net)
	return 0
}
