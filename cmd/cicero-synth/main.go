// Command cicero-synth exercises the update synthesis engine end to end:
// it generates randomized old/new configuration pairs, synthesizes
// dependency-ordered update plans certified by per-node local
// verification, executes them through the full BFT + threshold-signature
// pipeline on the selected backends, and cross-checks every observed
// data-plane state with the shared invariant walkers.
//
// Usage:
//
//	cicero-synth -seeds 50                       # sweep on sim + inproc
//	cicero-synth -seeds 50 -backends sim         # simulator only
//	cicero-synth -show 17                        # print one seed's plan
//	cicero-synth -seeds 10 -canary=false         # skip the planted mutant
//
// Every seed also plants a bad-ordering canary (one dropped dependency
// edge) unless -canary=false; local verification must reject the mutant.
// Exit status is 1 when any seed fails, violates an invariant, or lets a
// canary through, 0 on a clean sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cicero/internal/synthesis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seeds    = flag.Int("seeds", 10, "number of seeds (starting at -seed)")
		seed     = flag.Int64("seed", 1, "first seed")
		backends = flag.String("backends", "sim,inproc", "comma-separated execution backends: sim | inproc | tcp")
		canary   = flag.Bool("canary", true, "plant a bad-ordering mutant per seed (local verification must catch it)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-execution timeout on live backends")
		show     = flag.Int64("show", -1, "generate and print a single seed's scenario and plan, then exit")
		verbose  = flag.Bool("v", false, "per-seed progress lines")
	)
	flag.Parse()

	if *show >= 0 {
		return showSeed(*show)
	}

	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}
	if len(list) == 0 {
		fmt.Fprintln(os.Stderr, "cicero-synth: no backends given")
		return 2
	}

	opt := synthesis.SweepOptions{
		Seeds:     *seeds,
		StartSeed: *seed,
		Backends:  list,
		Canary:    *canary,
		Timeout:   *timeout,
	}
	if *verbose {
		opt.Progress = func(done, total int, s int64, plan *synthesis.Plan, failures int) {
			status := "ok"
			if failures > 0 {
				status = fmt.Sprintf("failures=%d", failures)
			}
			if plan == nil {
				fmt.Printf("[%d/%d] seed=%d GENERATION FAILED\n", done, total, s)
				return
			}
			fmt.Printf("[%d/%d] seed=%d %s %s\n", done, total, s, plan.Summary(), status)
		}
	}

	start := time.Now()
	res := synthesis.Sweep(opt)

	fmt.Printf("synth sweep: seeds=%d plans=%d updates=%d two-phase-classes=%d wall=%v\n",
		res.Seeds, res.Plans, res.Updates, res.TwoPhase, time.Since(start).Round(time.Millisecond))
	for _, b := range res.Backends() {
		st := res.PerBackend[b]
		fmt.Printf("  [%s] executed=%d applied=%d checks=%d violations=%d\n",
			b, st.Executed, st.Applied, st.Checks, st.Violations)
	}
	if *canary {
		fmt.Printf("  canary: caught %d/%d planted bad orderings\n", res.CanaryCaught, res.CanaryTotal)
	}
	for _, f := range res.Failures {
		fmt.Printf("  FAIL: %s\n", f)
	}

	if len(res.Failures) > 0 || res.Violations() > 0 {
		return 1
	}
	if *canary && res.CanaryCaught != res.CanaryTotal {
		fmt.Println("CANARY MISSED: a dropped dependency edge passed local verification")
		return 1
	}
	return 0
}

// showSeed generates one seed and prints the scenario, the synthesized
// plan, and the canary mutant local verification rejects.
func showSeed(seed int64) int {
	scn, plan, err := synthesis.Generate(seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-synth: %v\n", err)
		return 1
	}
	oldRules, newRules := 0, 0
	for _, rs := range scn.Old {
		oldRules += len(rs)
	}
	for _, rs := range scn.New {
		newRules += len(rs)
	}
	fmt.Printf("scenario %s: switches=%d hosts=%d rules old=%d new=%d policies=%d\n",
		scn.Name, len(scn.Switches()), len(scn.Hosts), oldRules, newRules, len(scn.Props.Waypoints))
	for _, p := range scn.Props.Waypoints {
		fmt.Printf("  policy: %s\n", p.String())
	}
	fmt.Printf("plan: %s\n", plan.Summary())
	for _, c := range plan.Classes {
		fmt.Printf("  class: %s\n", c.String())
	}
	for i, u := range plan.Updates {
		fmt.Printf("  [%d] %s %s deps=%v\n", i, u.ID, u.Mod, plan.Deps[i])
	}
	mutant, edge, ok := synthesis.PlantBadOrdering(scn, plan, seed)
	if !ok {
		fmt.Println("canary: no plantable bad ordering")
		return 0
	}
	if err := synthesis.VerifyPlan(scn, mutant); err != nil {
		fmt.Printf("canary: dropping edge %s rejected by local verification:\n  %v\n", edge, err)
		return 0
	}
	fmt.Printf("CANARY MISSED: dropping edge %s passed local verification\n", edge)
	return 1
}
