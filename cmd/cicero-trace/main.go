// Command cicero-trace merges the per-process structured trace files a
// distributed deployment writes (one JSONL file per node boot, plus the
// supervisor's) into one causally ordered timeline. Every process stamps
// its events with a Lamport clock that the TCP fabric threads through
// each frame, so sorting the union by clock is causally consistent: an
// apply always lands after the dispatch it references, even across
// processes that never shared a wall clock.
//
// Usage:
//
//	cicero-trace [-check] [-o merged.jsonl] trace-*.jsonl
//	cicero-trace -check /path/to/trace-dir
//
// Directory arguments expand to every trace-*.jsonl inside. -check
// verifies the merged timeline's causal structure (per-process order
// preserved, every referenced apply preceded by its dispatch) and exits
// nonzero on violation. Without -o the merged timeline prints to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cicero/internal/distrib"
)

func main() {
	var (
		check = flag.Bool("check", false, "verify causal structure; exit nonzero on violation")
		out   = flag.String("o", "", "write merged timeline here instead of stdout")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "cicero-trace: no trace files given")
		flag.Usage()
		os.Exit(2)
	}

	var paths []string
	for _, arg := range flag.Args() {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cicero-trace: %v\n", err)
			os.Exit(2)
		}
		if info.IsDir() {
			matches, err := filepath.Glob(filepath.Join(arg, "trace-*.jsonl"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "cicero-trace: %v\n", err)
				os.Exit(2)
			}
			sort.Strings(matches)
			paths = append(paths, matches...)
		} else {
			paths = append(paths, arg)
		}
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "cicero-trace: no trace files found")
		os.Exit(2)
	}

	merged, err := distrib.MergeTraces(paths)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-trace: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cicero-trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	for _, ev := range merged {
		if err := enc.Encode(ev); err != nil {
			fmt.Fprintf(os.Stderr, "cicero-trace: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "cicero-trace: merged %d events from %d files\n", len(merged), len(paths))

	if *check {
		violations := distrib.CheckCausal(merged)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "cicero-trace: CAUSAL VIOLATION: %s\n", v)
		}
		if len(violations) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cicero-trace: causal order verified (%d events)\n", len(merged))
	}
}
