// Command cicero-node boots a single Cicero node — one controller or one
// switch — as its own OS process, from a signed provisioning bundle and a
// static address map. The supervisor (internal/distrib, or any external
// process manager) launches one cicero-node per planned node; together
// they form a true distributed deployment of the livenet TCP backend.
//
// Usage:
//
//	cicero-node -bundle bundle-dom0_ctl_1.json -addrs addrs.json \
//	    -deploy-pub <hex ed25519 key> [-trace trace.jsonl] \
//	    [-boot-epoch N] [-crash-recovery] [-resync]
//
// The bundle's signature must verify against -deploy-pub before any key
// material in it is used. -boot-epoch, -crash-recovery and -resync are
// volatile restart parameters (they change on every reboot, so they ride
// the command line, not the signed bundle): a restarted controller passes
// -crash-recovery to boot mute and run peer state transfer; a restarted
// switch passes a bumped -boot-epoch (fresh event-id namespace) and
// -resync to request a full table transfer.
//
// The process serves until SIGTERM/SIGINT, then shuts down cleanly. A
// SIGKILL is the supervisor's crash injection: no shutdown path runs, and
// recovery is exercised on the next boot.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"cicero/internal/distrib"
)

func main() {
	var (
		bundle    = flag.String("bundle", "", "signed provisioning bundle (required)")
		addrs     = flag.String("addrs", "", "static address map JSON (required)")
		deployPub = flag.String("deploy-pub", "", "hex ed25519 deployment public key (required)")
		trace     = flag.String("trace", "", "structured trace output (JSONL); empty disables")
		bootEpoch = flag.Uint("boot-epoch", 0, "switch event-id namespace; bump on every restart")
		crashRec  = flag.Bool("crash-recovery", false, "controller: boot mute and recover state from peers")
		resync    = flag.Bool("resync", false, "switch: request a full table resync after boot")
	)
	flag.Parse()
	if *bundle == "" || *addrs == "" || *deployPub == "" {
		fmt.Fprintln(os.Stderr, "cicero-node: -bundle, -addrs and -deploy-pub are required")
		flag.Usage()
		os.Exit(2)
	}
	pub, err := hex.DecodeString(*deployPub)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicero-node: -deploy-pub: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := distrib.RunNode(ctx, distrib.NodeOptions{
		BundlePath:    *bundle,
		AddrsPath:     *addrs,
		DeployPub:     pub,
		TracePath:     *trace,
		BootEpoch:     uint32(*bootEpoch),
		CrashRecovery: *crashRec,
		Resync:        *resync,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "cicero-node: %v\n", err)
		os.Exit(1)
	}
}
