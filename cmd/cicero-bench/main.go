// Command cicero-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	cicero-bench -experiment fig11a [-flows 5000] [-seed 2020] [-quick] [-real-crypto]
//	cicero-bench -experiment all
//	cicero-bench -crypto-bench [-crypto-bench-out BENCH_crypto.json] [-quick]
//	cicero-bench -list
//
// -crypto-bench measures the real wall-clock cost of the crypto fast path
// (pairings, verification, threshold combining) and writes a
// machine-readable JSON report; it is separate from -experiment because
// experiment output is deterministic virtual time while these numbers
// depend on the host machine.
//
// Each experiment prints the same rows/series its paper counterpart
// reports; EXPERIMENTS.md records measured-versus-paper for all of them.
package main

import (
	"flag"
	"fmt"
	"os"

	"cicero/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "", "experiment id (fig11a..fig12d, table1, table2, or 'all')")
		flows      = flag.Int("flows", 0, "flows per run (default 5000, or 400 with -quick)")
		seed       = flag.Int64("seed", 2020, "deterministic simulation seed")
		quick      = flag.Bool("quick", false, "shrink topologies and flow counts for a fast pass")
		realCrypto = flag.Bool("real-crypto", false, "execute real BLS/Ed25519 operations (slow)")
		list       = flag.Bool("list", false, "list experiment ids and exit")

		cryptoBench    = flag.Bool("crypto-bench", false, "run crypto microbenchmarks and write a JSON report")
		cryptoBenchOut = flag.String("crypto-bench-out", "BENCH_crypto.json", "output path for -crypto-bench")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return 0
	}
	if *cryptoBench {
		report, err := experiments.RunCryptoBench(experiments.Options{Quick: *quick})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cicero-bench: %v\n", err)
			return 1
		}
		report.Render(os.Stdout)
		out, err := os.Create(*cryptoBenchOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cicero-bench: %v\n", err)
			return 1
		}
		defer out.Close()
		if err := report.WriteJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "cicero-bench: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *cryptoBenchOut)
		return 0
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "cicero-bench: -experiment is required (use -list to enumerate)")
		flag.Usage()
		return 2
	}
	opt := experiments.Options{
		Flows:      *flows,
		Seed:       *seed,
		Quick:      *quick,
		CryptoReal: *realCrypto,
	}
	names := []string{*experiment}
	if *experiment == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		if err := experiments.Run(name, opt, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cicero-bench: %v\n", err)
			return 1
		}
		fmt.Println()
	}
	return 0
}
