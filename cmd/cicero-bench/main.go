// Command cicero-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	cicero-bench -experiment fig11a [-flows 5000] [-seed 2020] [-quick] [-real-crypto]
//	cicero-bench -experiment all
//	cicero-bench -crypto-bench [-crypto-bench-out BENCH_crypto.json] [-quick]
//	cicero-bench -scale [-scale-out BENCH_scale.json] [-quick] [-backends simnet,inproc,tcp] [-batch-sizes 1,8,32,64]
//	cicero-bench -list
//
// -scale sweeps the batched hot path: for each backend and batch size it
// drives the concurrent update workload and reports updates/sec, latency
// percentiles, pairings per update and bytes per update, gating every leg
// on digest identity with the batch=1 simnet reference.
//
// -crypto-bench measures the real wall-clock cost of the crypto fast path
// (pairings, verification, threshold combining) and writes a
// machine-readable JSON report; it is separate from -experiment because
// experiment output is deterministic virtual time while these numbers
// depend on the host machine.
//
// Each experiment prints the same rows/series its paper counterpart
// reports; EXPERIMENTS.md records measured-versus-paper for all of them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cicero/internal/experiments"
)

// splitList parses a comma-separated flag value ("" yields nil, letting
// the experiment defaults apply).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "", "experiment id (fig11a..fig12d, table1, table2, or 'all')")
		flows      = flag.Int("flows", 0, "flows per run (default 5000, or 400 with -quick)")
		seed       = flag.Int64("seed", 2020, "deterministic simulation seed")
		quick      = flag.Bool("quick", false, "shrink topologies and flow counts for a fast pass")
		realCrypto = flag.Bool("real-crypto", false, "execute real BLS/Ed25519 operations (slow)")
		list       = flag.Bool("list", false, "list experiment ids and exit")

		cryptoBench    = flag.Bool("crypto-bench", false, "run crypto microbenchmarks and write a JSON report")
		cryptoBenchOut = flag.String("crypto-bench-out", "BENCH_crypto.json", "output path for -crypto-bench")

		scale      = flag.Bool("scale", false, "run the batch-size throughput sweep and write a JSON report")
		scaleOut   = flag.String("scale-out", "BENCH_scale.json", "output path for -scale")
		backends   = flag.String("backends", "", "comma-separated sweep backends (default simnet,inproc,tcp; quick drops tcp)")
		batchSizes = flag.String("batch-sizes", "", "comma-separated batch sizes (default 1,8,16,32,64; quick 1,8,32)")
		scaleFlows = flag.Int("scale-flows", 0, "concurrent flows per sweep leg (default 96, or 24 with -quick)")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return 0
	}
	if *cryptoBench {
		report, err := experiments.RunCryptoBench(experiments.Options{Quick: *quick})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cicero-bench: %v\n", err)
			return 1
		}
		report.Render(os.Stdout)
		out, err := os.Create(*cryptoBenchOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cicero-bench: %v\n", err)
			return 1
		}
		defer out.Close()
		if err := report.WriteJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "cicero-bench: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *cryptoBenchOut)
		return 0
	}
	if *scale {
		opt := experiments.ScaleOptions{
			Quick:    *quick,
			Seed:     *seed,
			Flows:    *scaleFlows,
			Backends: splitList(*backends),
		}
		for _, tok := range splitList(*batchSizes) {
			var n int
			if _, err := fmt.Sscanf(tok, "%d", &n); err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "cicero-bench: bad -batch-sizes entry %q\n", tok)
				return 2
			}
			opt.BatchSizes = append(opt.BatchSizes, n)
		}
		report, err := experiments.RunScale(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cicero-bench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*scaleOut, report.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cicero-bench: %v\n", err)
			return 1
		}
		for _, leg := range report.Legs {
			fmt.Printf("%-7s batch=%-3d %8.1f upd/s  p95 %7.2fms  %5.3f pairings/upd  %6.1f sig B/upd  tables=%v content=%v\n",
				leg.Backend, leg.BatchSize, leg.UpdatesPerSec, leg.P95Ms,
				leg.PairingsPerUpdate, leg.SigBytesPerUpdate, leg.TableMatch, leg.ContentMatch)
		}
		fmt.Printf("wrote %s\n", *scaleOut)
		if !report.Passed() {
			fmt.Fprintln(os.Stderr, "cicero-bench: scale sweep diverged from the batch=1 simnet reference")
			return 1
		}
		return 0
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "cicero-bench: -experiment is required (use -list to enumerate)")
		flag.Usage()
		return 2
	}
	opt := experiments.Options{
		Flows:      *flows,
		Seed:       *seed,
		Quick:      *quick,
		CryptoReal: *realCrypto,
	}
	names := []string{*experiment}
	if *experiment == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		if err := experiments.Run(name, opt, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cicero-bench: %v\n", err)
			return 1
		}
		fmt.Println()
	}
	return 0
}
