// Command cicero-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	cicero-bench -experiment fig11a [-flows 5000] [-seed 2020] [-quick] [-real-crypto]
//	cicero-bench -experiment all
//	cicero-bench -list
//
// Each experiment prints the same rows/series its paper counterpart
// reports; EXPERIMENTS.md records measured-versus-paper for all of them.
package main

import (
	"flag"
	"fmt"
	"os"

	"cicero/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "", "experiment id (fig11a..fig12d, table1, table2, or 'all')")
		flows      = flag.Int("flows", 0, "flows per run (default 5000, or 400 with -quick)")
		seed       = flag.Int64("seed", 2020, "deterministic simulation seed")
		quick      = flag.Bool("quick", false, "shrink topologies and flow counts for a fast pass")
		realCrypto = flag.Bool("real-crypto", false, "execute real BLS/Ed25519 operations (slow)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return 0
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "cicero-bench: -experiment is required (use -list to enumerate)")
		flag.Usage()
		return 2
	}
	opt := experiments.Options{
		Flows:      *flows,
		Seed:       *seed,
		Quick:      *quick,
		CryptoReal: *realCrypto,
	}
	names := []string{*experiment}
	if *experiment == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		if err := experiments.Run(name, opt, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cicero-bench: %v\n", err)
			return 1
		}
		fmt.Println()
	}
	return 0
}
