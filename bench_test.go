// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment at reduced
// scale per iteration (the full-scale runs are `cicero-bench -experiment
// <id>`); the rendered rows are the paper's series.
//
//	go test -bench=. -benchmem
package cicero_test

import (
	"io"
	"testing"

	"cicero/internal/experiments"
)

// benchOpts keeps per-iteration work bounded while preserving every
// protocol structure the figures depend on.
func benchOpts() experiments.Options {
	return experiments.Options{Quick: true, Flows: 120, Seed: 99}
}

// runExperiment executes one experiment per iteration, discarding output.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	opt := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, opt, io.Discard); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

// BenchmarkFig11a regenerates the Hadoop flow-completion CDF (single pod,
// centralized vs crash-tolerant vs Cicero vs Cicero-agg).
func BenchmarkFig11a(b *testing.B) { runExperiment(b, "fig11a") }

// BenchmarkFig11b regenerates the web-server flow-completion CDF.
func BenchmarkFig11b(b *testing.B) { runExperiment(b, "fig11b") }

// BenchmarkFig11c regenerates the unamortized (setup/teardown) CDF.
func BenchmarkFig11c(b *testing.B) { runExperiment(b, "fig11c") }

// BenchmarkFig11d regenerates the switch CPU utilization series.
func BenchmarkFig11d(b *testing.B) { runExperiment(b, "fig11d") }

// BenchmarkFig12a regenerates update time vs control-plane size.
func BenchmarkFig12a(b *testing.B) { runExperiment(b, "fig12a") }

// BenchmarkFig12b regenerates per-domain event locality.
func BenchmarkFig12b(b *testing.B) { runExperiment(b, "fig12b") }

// BenchmarkFig12c regenerates single- vs multi-domain flow completion.
func BenchmarkFig12c(b *testing.B) { runExperiment(b, "fig12c") }

// BenchmarkFig12d regenerates the multi-data-center comparison.
func BenchmarkFig12d(b *testing.B) { runExperiment(b, "fig12d") }

// BenchmarkTable1 regenerates the consistency-scenario quantification.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2 renders the feature matrix.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
