package cicero_test

import (
	"fmt"
	"log"
	"time"

	"cicero"
)

// Example assembles a small Cicero deployment, routes two flows, and
// shows the protocol counters.
func Example() {
	topo, err := cicero.SinglePod(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	net, err := cicero.New(cicero.Options{Topology: topo, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	results, err := net.Run([]cicero.Flow{
		{ID: 1, Src: cicero.Host(0, 0, 0, 0), Dst: cicero.Host(0, 0, 2, 0), SizeKB: 64},
		{ID: 2, Src: cicero.Host(0, 0, 0, 1), Dst: cicero.Host(0, 0, 2, 0), SizeKB: 64, Start: 50 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := net.Stats()
	fmt.Printf("flows completed: %d\n", len(results))
	fmt.Printf("second flow reused rules: %v\n", results[1].RuleReused)
	fmt.Printf("events delivered: %d\n", stats.EventsDelivered)
	fmt.Printf("updates rejected: %d\n", stats.UpdatesRejected)
	// Output:
	// flows completed: 2
	// second flow reused rules: true
	// events delivered: 1
	// updates rejected: 0
}

// ExampleNew_multiDomain builds the paper's multi-domain deployment: one
// update domain per pod plus an interconnect domain.
func ExampleNew_multiDomain() {
	topo, err := cicero.InterconnectedPods(2, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	net, err := cicero.New(cicero.Options{
		Topology: topo,
		Domains:  3,
		DomainOf: cicero.ByPod(2, 2),
		Seed:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	// A cross-pod flow: the event is forwarded between domains and each
	// control plane updates its own switches in parallel.
	results, err := net.Run([]cicero.Flow{
		{ID: 1, Src: cicero.Host(0, 0, 0, 0), Dst: cicero.Host(0, 1, 2, 0), SizeKB: 64},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-domain flow completed: %v\n", len(results) == 1)
	// Output:
	// cross-domain flow completed: true
}
