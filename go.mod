module cicero

go 1.22
