// Package cicero is the public API of this repository: a from-scratch
// reproduction of "Consistent and Secure Network Updates Made Practical"
// (Lembke, Ravi, Roman, Eugster — Middleware '20).
//
// Cicero is an SD-WAN control plane in which network updates are
// consistent — ordered by an update scheduler so the data plane never
// transits loops, black holes, firewall bypasses or congestion — and
// secure — switches apply an update only when a quorum of
// t = ⌊(n−1)/3⌋+1 controllers threshold-signs it, with events totally
// ordered by Byzantine fault-tolerant atomic broadcast and membership
// changes re-dealing key shares without ever changing the public key
// switches hold.
//
// The package assembles deployments on a deterministic discrete-event
// simulator standing in for the paper's DeterLab testbed: topologies from
// internal/topology (Facebook fabric pods, Deutsche Telekom multi-DC),
// workloads from internal/workload (Hadoop and web-server mixes), and the
// full protocol stack from internal/{controlplane,dataplane,bft,tcrypto}.
//
// Quick start:
//
//	topo, _ := cicero.SinglePod(8, 2)
//	net, _ := cicero.New(cicero.Options{Topology: topo, Controllers: 4})
//	results, _ := net.Run([]cicero.Flow{{ID: 1, Src: cicero.Host(0,0,0,0), Dst: cicero.Host(0,0,5,1), SizeKB: 256}})
//
// See the examples/ directory for runnable scenarios and cmd/cicero-bench
// for the paper's evaluation harness.
package cicero

import (
	"fmt"
	"time"

	"cicero/internal/controlplane"
	"cicero/internal/core"
	"cicero/internal/protocol"
	"cicero/internal/routing"
	"cicero/internal/scheduler"
	"cicero/internal/simnet"
	"cicero/internal/topology"
	"cicero/internal/workload"
)

// Protocol selects the control-plane protocol.
type Protocol = controlplane.Protocol

// Protocols.
const (
	// Centralized is the unreplicated baseline.
	Centralized = controlplane.ProtoCentralized
	// CrashTolerant replicates with atomic broadcast but does not
	// authenticate updates.
	CrashTolerant = controlplane.ProtoCrash
	// Cicero is the full protocol (default).
	Cicero = controlplane.ProtoCicero
)

// Aggregation selects where threshold-signature aggregation happens.
type Aggregation = controlplane.Aggregation

// Aggregation modes.
const (
	// SwitchAggregation has switches collect and combine shares (default).
	SwitchAggregation = controlplane.AggSwitch
	// ControllerAggregation designates an aggregator controller,
	// trading latency for switch CPU (§4.2 of the paper).
	ControllerAggregation = controlplane.AggController
)

// Flow is one network flow to route and complete.
type Flow = workload.Flow

// Result is a completed flow's measurements.
type Result = core.FlowResult

// Topology re-exports the graph type for custom topologies.
type Topology = topology.Graph

// Options assembles a deployment. The zero value plus a Topology gives a
// single-domain, 4-controller Cicero deployment with simulated crypto
// costs.
type Options struct {
	// Topology is the data plane (required). Build one with SinglePod,
	// InterconnectedPods, MultiDC, or construct a custom graph.
	Topology *topology.Graph
	// Protocol defaults to Cicero.
	Protocol Protocol
	// Aggregation defaults to SwitchAggregation.
	Aggregation Aggregation
	// Controllers per domain (default 4, the paper's setup).
	Controllers int
	// Domains splits the network into that many update domains using
	// DomainOf; both default to a single domain.
	Domains  int
	DomainOf func(n *topology.Node) int
	// RealCrypto executes real BLS threshold signatures and Ed25519
	// end to end (forged messages genuinely fail verification).
	RealCrypto bool
	// PairRules installs per-flow rules (required for Teardown runs).
	PairRules bool
	// Seed makes the whole simulation deterministic.
	Seed int64
}

// Network is an assembled deployment.
type Network struct {
	inner *core.Network
}

// New assembles a deployment.
func New(opt Options) (*Network, error) {
	inner, err := core.Build(core.Config{
		Graph:                opt.Topology,
		Protocol:             opt.Protocol,
		Aggregation:          opt.Aggregation,
		ControllersPerDomain: opt.Controllers,
		NumDomains:           opt.Domains,
		DomainOf:             opt.DomainOf,
		PairRules:            opt.PairRules,
		Cost:                 protocol.Calibrated(),
		CryptoReal:           opt.RealCrypto,
		Seed:                 opt.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("cicero: %w", err)
	}
	return &Network{inner: inner}, nil
}

// Run injects flows and runs the simulation to quiescence.
func (n *Network) Run(flows []Flow) ([]Result, error) {
	return n.inner.RunFlows(flows, core.RunOptions{})
}

// RunTeardown runs flows in the unamortized setup/teardown mode: rules
// are removed when each flow completes (requires Options.PairRules).
func (n *Network) RunTeardown(flows []Flow) ([]Result, error) {
	return n.inner.RunFlows(flows, core.RunOptions{Teardown: true})
}

// Stats summarizes protocol activity.
type Stats struct {
	EventsDelivered uint64
	UpdatesSigned   uint64
	UpdatesApplied  uint64
	UpdatesRejected uint64
	SwitchCPU       time.Duration
}

// Stats returns protocol counters accumulated so far.
func (n *Network) Stats() Stats {
	var s Stats
	for _, d := range n.inner.Domains {
		if len(d.Controllers) > 0 {
			s.EventsDelivered += d.Controllers[0].EventsDelivered
		}
		for _, ctl := range d.Controllers {
			s.UpdatesSigned += ctl.UpdatesSigned
		}
	}
	for _, sw := range n.inner.Switches {
		s.UpdatesApplied += sw.UpdatesApplied
		s.UpdatesRejected += sw.UpdatesRejected
	}
	s.SwitchCPU = n.inner.SwitchCPUTotal()
	return s
}

// Internal exposes the underlying assembly for advanced scenarios
// (membership changes, fault injection, direct switch inspection); the
// examples use it.
func (n *Network) Internal() *core.Network { return n.inner }

// SinglePod builds one Facebook-fabric server pod: racks top-of-rack
// switches under 4 edge switches (the paper's §6.2 topology).
func SinglePod(racks, hostsPerRack int) (*topology.Graph, error) {
	cfg := topology.DefaultFabricConfig()
	if racks > 0 {
		cfg.RacksPerPod = racks
	}
	if hostsPerRack > 0 {
		cfg.HostsPerRack = hostsPerRack
	}
	return topology.BuildSinglePod(cfg)
}

// InterconnectedPods builds pods joined by a redundant interconnect
// layer (the paper's §6.3 multi-domain topology).
func InterconnectedPods(pods, racks, hostsPerRack int) (*topology.Graph, error) {
	cfg := topology.DefaultFabricConfig()
	if racks > 0 {
		cfg.RacksPerPod = racks
	}
	if hostsPerRack > 0 {
		cfg.HostsPerRack = hostsPerRack
	}
	return topology.BuildInterconnectedPods(topology.InterconnectPodsConfig{
		Fabric:               cfg,
		Pods:                 pods,
		InterconnectSwitches: 4,
		EdgeInterconnect:     60 * time.Microsecond,
	})
}

// MultiDC builds data centers at Deutsche Telekom backbone cities with
// WAN links (the paper's Fig. 12d topology).
func MultiDC(dataCenters, podsPerDC, racks int) (*topology.Graph, error) {
	cfg := topology.DefaultMultiDCConfig()
	cfg.DataCenters = dataCenters
	cfg.PodsPerDC = podsPerDC
	if racks > 0 {
		cfg.Fabric.RacksPerPod = racks
	}
	cfg.Fabric.HostsPerRack = 2
	return topology.BuildMultiDC(cfg)
}

// ByPod maps switches to one domain per pod; fabric-level switches go to
// the interconnect domain (the last index).
func ByPod(podsPerDC, interconnectDomain int) func(n *topology.Node) int {
	return core.ByPod(podsPerDC, interconnectDomain)
}

// Host returns the canonical host name for (dc, pod, rack, host).
func Host(dc, pod, rack, host int) string {
	return topology.HostName(dc, pod, rack, host)
}

// ToR returns the canonical top-of-rack switch name for (dc, pod, rack).
func ToR(dc, pod, rack int) string {
	return topology.ToRName(dc, pod, rack)
}

// HadoopWorkload generates the paper's Hadoop traffic mix over the
// topology's hosts.
func HadoopWorkload(topo *topology.Graph, flows int, seed int64) ([]Flow, error) {
	return workload.Generate(topo, workload.Config{
		Mix:              workload.HadoopMix(),
		Flows:            flows,
		MeanInterarrival: 4 * time.Millisecond,
		Seed:             seed,
	})
}

// WebWorkload generates the paper's web-server traffic mix.
func WebWorkload(topo *topology.Graph, flows int, seed int64) ([]Flow, error) {
	return workload.Generate(topo, workload.Config{
		Mix:              workload.WebServerMix(),
		Flows:            flows,
		MeanInterarrival: 4 * time.Millisecond,
		Seed:             seed,
	})
}

// Compile-time checks that re-exported helpers stay wired.
var (
	_ = scheduler.ReversePath{}
	_ = routing.ShortestPath{}
	_ simnet.Handler
)
